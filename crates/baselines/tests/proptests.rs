//! Property tests for the baseline performance models: sane scaling in
//! problem size and iteration count, and functional agreement with the
//! reference under random kernels.

use proptest::prelude::*;
use sparstencil::grid::Grid;
use sparstencil::reference;
use sparstencil::stencil::StencilKernel;
use sparstencil_baselines::all_baselines;
use sparstencil_mat::half::Precision;
use sparstencil_tcu::GpuConfig;

fn random_small_kernel() -> impl Strategy<Value = StencilKernel> {
    (1usize..=2, 1i32..=7).prop_map(|(radius, seed)| {
        let e = 2 * radius + 1;
        let mut w = vec![0.0f64; e * e];
        let mut s = seed as u64;
        for v in w.iter_mut() {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            *v = ((s % 9) as f64 - 4.0) / 8.0;
        }
        w[(e / 2) * e + e / 2] = 0.5; // ensure a nonzero center
        StencilKernel::new("rand", 2, [1, e, e], w)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn modelled_time_grows_with_problem_size(kernel in random_small_kernel()) {
        let gpu = GpuConfig::a100();
        for b in all_baselines() {
            let small = b.model(&kernel, [1, 518, 518], 10, Precision::Fp16, &gpu).unwrap();
            let large = b.model(&kernel, [1, 2054, 2054], 10, Precision::Fp16, &gpu).unwrap();
            prop_assert!(
                large.total_seconds > small.total_seconds,
                "{}: time must grow with size", b.name()
            );
            // ~16× the points should cost between 2× and 64× the time.
            let ratio = large.total_seconds / small.total_seconds;
            prop_assert!((2.0..64.0).contains(&ratio), "{}: ratio {ratio}", b.name());
        }
    }

    #[test]
    fn modelled_time_linear_in_iterations(kernel in random_small_kernel()) {
        let gpu = GpuConfig::a100();
        for b in all_baselines() {
            let one = b.model(&kernel, [1, 1030, 1030], 1, Precision::Fp16, &gpu).unwrap();
            let ten = b.model(&kernel, [1, 1030, 1030], 10, Precision::Fp16, &gpu).unwrap();
            let ratio = ten.total_seconds / one.total_seconds;
            prop_assert!((9.5..10.5).contains(&ratio), "{}: iter scaling {ratio}", b.name());
        }
    }

    #[test]
    fn execute_matches_reference(kernel in random_small_kernel()) {
        let shape = [1, 28, 30];
        let input = Grid::<f32>::smooth_random(2, shape);
        let mut ref_in = Grid::<f64>::from_fn_3d(2, shape, |z, y, x| input.get(z, y, x) as f64);
        ref_in.quantize(Precision::Fp16);
        let want = reference::apply(&kernel, &ref_in);
        let mass: f64 = kernel.weights().iter().map(|w| w.abs()).sum::<f64>().max(1.0);
        for b in all_baselines() {
            let got = b.execute(&kernel, &input, 1);
            let got64 = Grid::<f64>::from_fn_3d(2, shape, |z, y, x| got.get(z, y, x) as f64);
            let diff = got64.max_rel_diff_interior(&want, &kernel);
            prop_assert!(diff <= 0.1 * mass, "{}: diff {diff} mass {mass}", b.name());
        }
    }
}
