//! GEMM-library baselines: cuDNN-style implicit-GEMM convolution and
//! AMOS-style automatic mapping.
//!
//! Both route the stencil through dense tensor cores as a convolution,
//! which is exactly the Figure-1 pathology: a one-channel convolution
//! fills one row of the fragment's reduction panel and pays full im2col
//! data expansion. The two differ in locality: cuDNN's implicit GEMM
//! streams the im2col tiles through L2 with good hit rates, while AMOS's
//! generated mapping (tuned for tensor workloads, not halo exchanges)
//! loses the inter-tile reuse.

use crate::{finish_stats, Baseline, Geometry};
use sparstencil::exec::RunStats;
use sparstencil::stencil::StencilKernel;
use sparstencil_mat::half::Precision;
use sparstencil_tcu::{Counters, FragmentShape, GpuConfig};

fn dense_frag(precision: Precision) -> FragmentShape {
    match precision {
        Precision::Fp64 => FragmentShape::dense_fp64(),
        _ => FragmentShape::dense_fp16(),
    }
}

/// Shared implicit-GEMM counter model. `l2_reuse` controls whether
/// overlapping im2col windows hit in L2; `mapping_overhead` scales the
/// fragment-op count for suboptimal tiling.
#[allow(clippy::too_many_arguments)]
fn implicit_gemm_model(
    kernel: &StencilKernel,
    grid_shape: [usize; 3],
    iters: usize,
    precision: Precision,
    gpu: &GpuConfig,
    l2_reuse: bool,
    mapping_overhead: f64,
    occupancy: f64,
    kernel_points_for_gflops: u64,
) -> RunStats {
    let g = Geometry::of(kernel, grid_shape);
    let elem = precision.bytes() as u64;
    let frag = dense_frag(precision);

    // GEMM view: [1 × bbox] · [bbox × outputs] — the single output
    // channel occupies one of `frag.m` rows; the rest is padding.
    let k_frags = (g.bbox as usize).div_ceil(frag.k) as u64;
    let n_frags = (g.outputs as usize).div_ceil(frag.n) as u64;
    let n_mma = ((k_frags * n_frags) as f64 * mapping_overhead) as u64;

    let mut c = Counters::new();
    c.kernel_launches = iters as u64;
    c.dense_mma_count = n_mma * iters as u64;
    c.tc_executed_flops = n_mma * frag.executed_flops() * iters as u64;
    // Full im2col expansion: every output window is materialized.
    let touches = g.outputs * g.bbox * elem;
    c.global_read_bytes = touches * iters as u64;
    c.l2_hit_bytes = if l2_reuse {
        touches.saturating_sub(g.grid_points * elem) * iters as u64
    } else {
        0
    };
    c.global_write_bytes = g.outputs * elem * iters as u64;
    c.shared_write_bytes = touches * iters as u64;
    c.shared_read_bytes =
        n_mma * ((frag.k * frag.n + frag.m * frag.k) as u64) * elem * iters as u64;

    finish_stats(
        gpu,
        precision,
        c,
        occupancy,
        g.outputs,
        kernel_points_for_gflops,
        iters,
    )
}

/// cuDNN-style implicit-GEMM convolution (§4.3: "cuDNN … lacks Tensor
/// Core support for stencil patterns and underperforms on one-channel
/// convolutions"). Dense convolution over the kernel's bounding box:
/// star patterns pay for their zeros.
pub struct CudnnLike;

impl Baseline for CudnnLike {
    fn name(&self) -> &'static str {
        "cuDNN"
    }

    fn model(
        &self,
        kernel: &StencilKernel,
        grid_shape: [usize; 3],
        iters: usize,
        precision: Precision,
        gpu: &GpuConfig,
    ) -> Option<RunStats> {
        let g = Geometry::of(kernel, grid_shape);
        Some(implicit_gemm_model(
            kernel, grid_shape, iters, precision, gpu, true, 1.0, 0.885, g.points,
        ))
    }
}

/// AMOS-style automatic mapping \[Zheng et al., ISCA'22\] (§4.3: "AMOS
/// falls short due to inefficient stencil-to-TCU mapping"): the
/// spatial-accelerator abstraction finds a *valid* mapping but not a
/// locality-aware one — im2col windows are re-fetched from DRAM and the
/// chosen tiling issues ~1.5× the minimum fragment ops.
pub struct AmosLike;

impl Baseline for AmosLike {
    fn name(&self) -> &'static str {
        "AMOS"
    }

    fn model(
        &self,
        kernel: &StencilKernel,
        grid_shape: [usize; 3],
        iters: usize,
        precision: Precision,
        gpu: &GpuConfig,
    ) -> Option<RunStats> {
        let g = Geometry::of(kernel, grid_shape);
        Some(implicit_gemm_model(
            kernel, grid_shape, iters, precision, gpu, false, 1.5, 0.6, g.points,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cudnn_beats_amos() {
        let k = StencilKernel::box2d9p();
        let gpu = GpuConfig::a100();
        let c = CudnnLike
            .model(&k, [1, 2050, 2050], 10, Precision::Fp16, &gpu)
            .unwrap();
        let a = AmosLike
            .model(&k, [1, 2050, 2050], 10, Precision::Fp16, &gpu)
            .unwrap();
        assert!(
            c.gstencil_per_sec > a.gstencil_per_sec,
            "cuDNN {} vs AMOS {}",
            c.gstencil_per_sec,
            a.gstencil_per_sec
        );
    }

    #[test]
    fn cudnn_degrades_with_kernel_radius() {
        // Table 3 shape: cuDNN's per-point cost explodes from 3×3 to 7×7
        // kernels because im2col traffic scales with the bounding box.
        let gpu = GpuConfig::a100();
        let small = CudnnLike
            .model(
                &StencilKernel::heat2d(),
                [1, 2050, 2050],
                10,
                Precision::Fp64,
                &gpu,
            )
            .unwrap();
        let large = CudnnLike
            .model(
                &StencilKernel::box2d49p(),
                [1, 2054, 2054],
                10,
                Precision::Fp64,
                &gpu,
            )
            .unwrap();
        let per_point_small = small.seconds_per_iter / small.points_per_iter as f64;
        let per_point_large = large.seconds_per_iter / large.points_per_iter as f64;
        assert!(
            per_point_large / per_point_small > 3.0,
            "expected ≥3× per-point slowdown: {per_point_small:.3e} vs {per_point_large:.3e}"
        );
    }

    #[test]
    fn star_pays_for_bounding_box() {
        // cuDNN treats Star-2D13P as a dense 7×7 conv: same traffic as
        // Box-2D49P but fewer useful flops → lower useful GFlop/s.
        let gpu = GpuConfig::a100();
        let star = CudnnLike
            .model(
                &StencilKernel::star2d13p(),
                [1, 2054, 2054],
                10,
                Precision::Fp64,
                &gpu,
            )
            .unwrap();
        let boxk = CudnnLike
            .model(
                &StencilKernel::box2d49p(),
                [1, 2054, 2054],
                10,
                Precision::Fp64,
                &gpu,
            )
            .unwrap();
        assert!(star.gflops_per_sec < boxk.gflops_per_sec);
        // Same wall time (same traffic).
        let ratio = star.seconds_per_iter / boxk.seconds_per_iter;
        assert!((0.9..=1.1).contains(&ratio));
    }

    #[test]
    fn amos_dram_bound() {
        let k = StencilKernel::box2d9p();
        let gpu = GpuConfig::a100();
        let s = AmosLike
            .model(&k, [1, 2050, 2050], 10, Precision::Fp16, &gpu)
            .unwrap();
        assert_eq!(s.counters.l2_hit_bytes, 0);
        assert!(s.timing.memory_bound());
    }
}
