//! Dense-TCU pipeline baselines: TCStencil and ConvStencil.
//!
//! Both systems predate SparStencil's sparsity conversion but already map
//! stencils onto (dense) tensor cores, so they are faithfully modelled as
//! the SparStencil core pipeline in [`ExecMode::DenseTcu`] with each
//! system's fixed layout choices — which means they *execute
//! functionally* on the simulator and are verified against the reference,
//! exactly like SparStencil itself:
//!
//! - **TCStencil** \[Liu et al., ICS'22\] maps stencil rows directly onto
//!   fragments without crush-style tiling in `y` (layout `(4, 1)`), uses
//!   no lookup tables (address arithmetic in-kernel), and its original
//!   implementation is FP16-only — at other precisions this baseline
//!   reports `None`, matching its absence from Table 3.
//! - **ConvStencil** \[Chen et al., PPoPP'24\] performs layout morphing
//!   equivalent to a fixed small tessellation (layout `(2, 2)`) with
//!   lookup tables and double buffering, on dense TCUs.

use crate::Baseline;
use sparstencil::exec::RunStats;
use sparstencil::grid::Grid;
use sparstencil::layout::ExecMode;
use sparstencil::pipeline::Executor;
use sparstencil::plan::{OptFlags, Options};
use sparstencil::session::Simulation;
use sparstencil::stencil::StencilKernel;
use sparstencil_mat::half::Precision;
use sparstencil_tcu::GpuConfig;

fn dense_options(
    precision: Precision,
    gpu: &GpuConfig,
    layout: (usize, usize),
    lut: bool,
) -> Options {
    Options {
        precision,
        mode: ExecMode::DenseTcu,
        layout: Some(layout),
        flags: OptFlags {
            lut,
            double_buffer: true,
        },
        gpu: gpu.clone(),
        ..Options::default()
    }
}

/// Clamp a fixed layout to the kernel/grid so tiny grids still compile.
fn clamp_layout(
    kernel: &StencilKernel,
    grid_shape: [usize; 3],
    want: (usize, usize),
) -> (usize, usize) {
    let [_, ey, ex] = kernel.extent();
    let vy = grid_shape[1].saturating_sub(ey) + 1;
    let vx = grid_shape[2].saturating_sub(ex) + 1;
    (want.0.min(vx).max(1), want.1.min(vy).max(1))
}

/// TCStencil-like direct dense-TCU mapping.
pub struct TcStencilLike;

impl TcStencilLike {
    /// TCStencil's fixed layout: fragment rows along `x` only.
    pub const LAYOUT: (usize, usize) = (4, 1);
}

impl Baseline for TcStencilLike {
    fn name(&self) -> &'static str {
        "TCStencil"
    }

    fn model(
        &self,
        kernel: &StencilKernel,
        grid_shape: [usize; 3],
        iters: usize,
        precision: Precision,
        gpu: &GpuConfig,
    ) -> Option<RunStats> {
        if precision != Precision::Fp16 {
            return None; // FP16-only system.
        }
        let layout = clamp_layout(kernel, grid_shape, Self::LAYOUT);
        let opts = dense_options(precision, gpu, layout, false);
        let exec = Executor::<f32>::new(kernel, grid_shape, &opts).ok()?;
        Some(exec.run_modelled(grid_shape, iters))
    }

    fn session(&self, kernel: &StencilKernel, input: &Grid<f32>) -> Simulation<'static, f32> {
        let layout = clamp_layout(kernel, input.shape(), Self::LAYOUT);
        let opts = dense_options(Precision::Fp16, &GpuConfig::a100(), layout, false);
        Executor::<f32>::new(kernel, input.shape(), &opts)
            .expect("TCStencil pipeline must compile")
            .into_session(input)
    }
}

/// ConvStencil-like layout-morphed dense-TCU mapping. ConvStencil
/// performs layout morphing but with a fixed dual-tessellation rather
/// than SparStencil's full `(r1, r2)` search — modelled as the same
/// explorer restricted to `r ≤ 2` per axis (the tessellation pair).
/// This restriction is what Figure 10 attributes SparStencil's zoo-wide
/// advantage to ("thanks to its adaptive layout search").
pub struct ConvStencilLike;

impl ConvStencilLike {
    /// Search-space bound of ConvStencil's dual tessellation.
    pub const MAX_R: usize = 2;

    fn options(precision: Precision, gpu: &GpuConfig) -> Options {
        Options {
            precision,
            mode: ExecMode::DenseTcu,
            layout: None,
            max_r: Self::MAX_R,
            flags: OptFlags {
                lut: true,
                double_buffer: true,
            },
            gpu: gpu.clone(),
            ..Options::default()
        }
    }
}

impl Baseline for ConvStencilLike {
    fn name(&self) -> &'static str {
        "ConvStencil"
    }

    fn model(
        &self,
        kernel: &StencilKernel,
        grid_shape: [usize; 3],
        iters: usize,
        precision: Precision,
        gpu: &GpuConfig,
    ) -> Option<RunStats> {
        let opts = Self::options(precision, gpu);
        match precision {
            Precision::Fp64 => {
                let exec = Executor::<f64>::new(kernel, grid_shape, &opts).ok()?;
                Some(exec.run_modelled(grid_shape, iters))
            }
            _ => {
                let exec = Executor::<f32>::new(kernel, grid_shape, &opts).ok()?;
                Some(exec.run_modelled(grid_shape, iters))
            }
        }
    }

    fn session(&self, kernel: &StencilKernel, input: &Grid<f32>) -> Simulation<'static, f32> {
        let opts = Self::options(Precision::Fp16, &GpuConfig::a100());
        Executor::<f32>::new(kernel, input.shape(), &opts)
            .expect("ConvStencil pipeline must compile")
            .into_session(input)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparstencil_mat::half::verify_tolerance;

    #[test]
    fn tcstencil_fp16_only() {
        let k = StencilKernel::heat2d();
        let gpu = GpuConfig::a100();
        assert!(TcStencilLike
            .model(&k, [1, 130, 130], 5, Precision::Fp16, &gpu)
            .is_some());
        assert!(TcStencilLike
            .model(&k, [1, 130, 130], 5, Precision::Fp64, &gpu)
            .is_none());
    }

    #[test]
    fn convstencil_supports_fp64() {
        let k = StencilKernel::heat2d();
        let gpu = GpuConfig::a100();
        let s = ConvStencilLike
            .model(&k, [1, 1026, 1026], 5, Precision::Fp64, &gpu)
            .unwrap();
        assert!(s.gflops_per_sec > 0.0);
        assert!(s.counters.dense_mma_count > 0);
        assert_eq!(s.counters.sparse_mma_count, 0);
    }

    #[test]
    fn pipelines_execute_and_verify() {
        let k = StencilKernel::box2d9p();
        let shape = [1, 40, 40];
        let input = Grid::<f32>::smooth_random(2, shape);
        for b in [&TcStencilLike as &dyn Baseline, &ConvStencilLike] {
            let got = b.execute(&k, &input, 1);
            // Against the quantized reference.
            let mut ref_in = Grid::<f64>::from_fn_3d(2, shape, |z, y, x| input.get(z, y, x) as f64);
            ref_in.quantize(Precision::Fp16);
            let want = sparstencil::reference::apply(&k, &ref_in);
            let got64 = Grid::<f64>::from_fn_3d(2, shape, |z, y, x| got.get(z, y, x) as f64);
            let diff = got64.max_rel_diff_interior(&want, &k);
            assert!(
                diff <= verify_tolerance(Precision::Fp16),
                "{}: diff {diff}",
                b.name()
            );
        }
    }

    #[test]
    fn layout_clamps_on_tiny_grids() {
        let k = StencilKernel::box2d49p();
        let gpu = GpuConfig::a100();
        // 8×8 grid: valid region is 2×2 — fixed (4,1) must clamp.
        let s = TcStencilLike.model(&k, [1, 8, 8], 1, Precision::Fp16, &gpu);
        assert!(s.is_some());
    }
}
