//! # sparstencil-baselines — state-of-the-art comparison systems
//!
//! Re-implementations of the mapping strategies of the paper's seven
//! baselines, running on the same simulated A100 so the comparisons of
//! Figures 6/10/11 and Table 3 can be regenerated. The authors' binaries
//! (cuDNN, AMOS, Brick, DRStencil, TCStencil, ConvStencil) are not
//! available here; what distinguishes those systems from SparStencil —
//! and from each other — is *how they map a stencil onto the hardware*:
//! which execution units they use, how much redundant data they move,
//! and how well they fill fragments. Each module documents its mapping
//! model explicitly; all baselines compute numerically identical stencil
//! results (the mapping never changes the math), which the integration
//! tests verify.
//!
//! | baseline | units | mapping model |
//! |---|---|---|
//! | CUDA (naive) | CUDA cores | one thread per output, no staging |
//! | Brick | CUDA cores | fine-grained reuse: DRAM traffic ≈ unique bytes |
//! | DRStencil | CUDA cores | Brick + fusion-partition arithmetic reuse |
//! | cuDNN | dense TCU | implicit-GEMM conv, C=1: 1/16 fragment-row utilization, full im2col traffic |
//! | AMOS | dense TCU | automatic mapping without stencil locality: im2col traffic, no L2 reuse |
//! | TCStencil | dense TCU | direct fragment mapping, fixed (4,1) layout, no LUT |
//! | ConvStencil | dense TCU | layout-morphed (ConvStencil's tessellation ≈ fixed (2,2) crush), LUT + double buffering |
//!
//! TCStencil and ConvStencil are *actual dense-TCU pipelines* built on
//! the SparStencil core with fixed layouts — they execute functionally
//! and are verified; the CUDA-core and GEMM-library models are counter
//! models with reference-computed numerics.
//!
//! Every baseline plugs into the core's session API
//! ([`sparstencil::session`]): [`Baseline::session`] returns a
//! [`Simulation`] — pipeline-backed systems as real engine sessions over
//! their fixed layouts, counter-model systems as [`ReferenceSession`]s —
//! so one driver steps, probes, and reuses SparStencil and all seven
//! comparison systems interchangeably.

#![warn(missing_docs)]

pub mod cuda_cores;
pub mod gemm_libs;
pub mod tcu_pipelines;

use sparstencil::exec::RunStats;
use sparstencil::grid::{FieldView, Grid};
use sparstencil::reference;
use sparstencil::session::{Backend, Simulation};
use sparstencil::stencil::StencilKernel;
use sparstencil_mat::half::Precision;
use sparstencil_tcu::{model, Counters, GpuConfig, TimingBreakdown};

/// A comparison system.
pub trait Baseline: Send + Sync {
    /// Display name used in benchmark tables.
    fn name(&self) -> &'static str;

    /// Evaluate the baseline's performance model at an arbitrary problem
    /// size. Returns `None` when the baseline cannot run the
    /// configuration (e.g. sparse-only features at FP64).
    fn model(
        &self,
        kernel: &StencilKernel,
        grid_shape: [usize; 3],
        iters: usize,
        precision: Precision,
        gpu: &GpuConfig,
    ) -> Option<RunStats>;

    /// Open a persistent functional session for this baseline's mapping
    /// — the same [`Simulation`] driver SparStencil itself uses, so one
    /// harness steps, probes, and reuses any system interchangeably.
    ///
    /// The default wraps the quantized scalar reference (a
    /// [`ReferenceSession`] backend) — correct for every baseline, since
    /// mappings do not change the arithmetic. Pipeline-backed baselines
    /// override this with a real fragment-execution session over their
    /// fixed layouts.
    fn session(&self, kernel: &StencilKernel, input: &Grid<f32>) -> Simulation<'static, f32> {
        Simulation::new(ReferenceSession::new(kernel, input))
    }

    /// Execute functionally at verification scale, by driving a
    /// throwaway [`Baseline::session`] for `iters` steps.
    fn execute(&self, kernel: &StencilKernel, input: &Grid<f32>, iters: usize) -> Grid<f32> {
        let mut sim = self.session(kernel, input);
        sim.step_n(iters);
        sim.into_grid()
    }
}

/// Session backend for counter-model baselines: steps the Rayon-parallel
/// scalar reference with FP16 quantization per step — the functional
/// semantics every mapping shares (mappings are performance engineering,
/// not arithmetic). Carries no hardware model, so
/// [`Simulation::stats`] is `None`; performance comes from
/// [`Baseline::model`].
pub struct ReferenceSession {
    kernel: StencilKernel,
    cur: Grid<f32>,
    /// Pristine quantized input for `reset()`; `Option` only to share
    /// the core's [`stage_initial`](sparstencil::session::stage_initial)
    /// staging in `load()` — always `Some` (grids at verification scale
    /// are small enough that eager retention costs nothing).
    initial: Option<Grid<f32>>,
    /// Live dimensionality — a `load` may change it while `cur`'s own
    /// metadata still carries the construction-time value.
    dims: usize,
}

impl ReferenceSession {
    /// A reference session over `input`, quantized through FP16 like the
    /// hardware paths.
    pub fn new(kernel: &StencilKernel, input: &Grid<f32>) -> Self {
        let mut cur = input.clone();
        cur.quantize(Precision::Fp16);
        let initial = Some(cur.clone());
        Self {
            kernel: kernel.clone(),
            cur,
            initial,
            dims: input.dims(),
        }
    }
}

impl Backend<f32> for ReferenceSession {
    fn name(&self) -> &'static str {
        "reference"
    }

    fn shape(&self) -> [usize; 3] {
        self.cur.shape()
    }

    fn step(&mut self) {
        self.cur = reference::apply_parallel(&self.kernel, &self.cur);
        self.cur.quantize(Precision::Fp16);
    }

    fn field(&self) -> FieldView<'_, f32> {
        FieldView::windowed(&self.cur, self.dims, self.cur.shape())
    }

    fn load(&mut self, input: &Grid<f32>) {
        assert_eq!(
            input.shape(),
            self.cur.shape(),
            "grid shape differs from the session's"
        );
        sparstencil::session::stage_initial(
            input,
            &mut self.initial,
            self.cur.shape(),
            Precision::Fp16,
        );
        self.dims = input.dims();
        self.reset();
    }

    fn reset(&mut self) {
        let initial = self.initial.as_ref().expect("eagerly retained");
        self.cur.as_mut_slice().copy_from_slice(initial.as_slice());
    }

    fn into_grid(self: Box<Self>) -> Grid<f32> {
        if self.cur.dims() == self.dims {
            self.cur
        } else {
            self.field().to_grid()
        }
    }
}

/// All seven baselines, in the paper's comparison order.
pub fn all_baselines() -> Vec<Box<dyn Baseline>> {
    vec![
        Box::new(cuda_cores::NaiveCuda),
        Box::new(gemm_libs::CudnnLike),
        Box::new(gemm_libs::AmosLike),
        Box::new(cuda_cores::BrickLike),
        Box::new(cuda_cores::DrStencilLike),
        Box::new(tcu_pipelines::TcStencilLike),
        Box::new(tcu_pipelines::ConvStencilLike),
    ]
}

/// Problem geometry shared by the counter models.
pub(crate) struct Geometry {
    /// Valid output points per iteration.
    pub outputs: u64,
    /// Total grid points.
    pub grid_points: u64,
    /// Nonzero kernel points.
    pub points: u64,
    /// Kernel bounding-box size.
    pub bbox: u64,
}

impl Geometry {
    pub(crate) fn of(kernel: &StencilKernel, grid_shape: [usize; 3]) -> Self {
        let [ez, ey, ex] = kernel.extent();
        let outputs =
            ((grid_shape[0] - ez + 1) * (grid_shape[1] - ey + 1) * (grid_shape[2] - ex + 1)) as u64;
        Self {
            outputs,
            grid_points: (grid_shape[0] * grid_shape[1] * grid_shape[2]) as u64,
            points: kernel.points() as u64,
            bbox: (ez * ey * ex) as u64,
        }
    }
}

/// Assemble a [`RunStats`] from modelled per-run counters.
pub(crate) fn finish_stats(
    gpu: &GpuConfig,
    precision: Precision,
    counters: Counters,
    occupancy: f64,
    outputs_per_iter: u64,
    kernel_points: u64,
    iters: usize,
) -> RunStats {
    let timing: TimingBreakdown = model::kernel_time(gpu, &counters, precision);
    let total = timing.total;
    RunStats {
        iters,
        counters,
        timing,
        seconds_per_iter: if iters > 0 { total / iters as f64 } else { 0.0 },
        total_seconds: total,
        points_per_iter: outputs_per_iter,
        gstencil_per_sec: if total > 0.0 {
            model::gstencils_per_sec(outputs_per_iter, iters as u64, total)
        } else {
            0.0
        },
        gflops_per_sec: if total > 0.0 {
            model::gflops_per_sec(outputs_per_iter, kernel_points, iters as u64, total)
        } else {
            0.0
        },
        occupancy,
        utilization: model::utilization(gpu, &counters, &timing, occupancy),
        prep: Default::default(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_holds_seven() {
        let b = all_baselines();
        assert_eq!(b.len(), 7);
        let names: Vec<_> = b.iter().map(|x| x.name()).collect();
        assert_eq!(
            names,
            vec![
                "CUDA",
                "cuDNN",
                "AMOS",
                "Brick",
                "DRStencil",
                "TCStencil",
                "ConvStencil"
            ]
        );
    }

    #[test]
    fn default_execute_matches_reference() {
        let k = StencilKernel::heat2d();
        let g = Grid::<f32>::smooth_random(2, [1, 20, 20]);
        let b = cuda_cores::NaiveCuda;
        let out = b.execute(&k, &g, 2);
        // Self-consistency: deterministic.
        assert_eq!(out, b.execute(&k, &g, 2));
    }

    #[test]
    fn all_models_produce_positive_throughput() {
        let k = StencilKernel::box2d9p();
        let gpu = GpuConfig::a100();
        for b in all_baselines() {
            let stats = b
                .model(&k, [1, 1026, 1026], 10, Precision::Fp16, &gpu)
                .unwrap_or_else(|| panic!("{} refused fp16", b.name()));
            assert!(
                stats.gstencil_per_sec > 0.0,
                "{}: zero throughput",
                b.name()
            );
        }
    }
}
