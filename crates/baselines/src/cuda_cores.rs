//! CUDA-core baselines: the naive kernel, Brick, and DRStencil.
//!
//! These systems never touch tensor cores; their performance is governed
//! by scalar FFMA throughput and how much DRAM traffic their blocking
//! strategy eliminates.

use crate::{finish_stats, Baseline, Geometry};
use sparstencil::exec::RunStats;
use sparstencil::stencil::StencilKernel;
use sparstencil_mat::half::Precision;
use sparstencil_tcu::{Counters, GpuConfig};

/// Shared CUDA-core counter model.
///
/// On Ampere, L1 and shared memory are the same silicon, so every
/// neighborhood operand a scalar kernel consumes — whether it comes from
/// an L1 hit (naive) or an explicit staging buffer (Brick/DRStencil) —
/// transits the L1/shared datapath and is charged to the shared-memory
/// counters. L2/DRAM only see the reuse-filtered stream: roughly the
/// unique bytes plus a halo overhead.
#[allow(clippy::too_many_arguments)]
fn cuda_core_model(
    kernel: &StencilKernel,
    grid_shape: [usize; 3],
    iters: usize,
    precision: Precision,
    gpu: &GpuConfig,
    ffma_factor: f64,
    l1_factor: f64,
    occupancy: f64,
) -> RunStats {
    let g = Geometry::of(kernel, grid_shape);
    let elem = precision.bytes() as u64;
    let it = iters as u64;
    // High-order kernels exhaust the register file in scalar code; the
    // spilled operands bounce through local memory (L1 again).
    let spill = if g.points > 25 { 1.5 } else { 1.0 };
    let l1_factor = l1_factor * spill;
    let mut c = Counters::new();
    c.kernel_launches = it;
    c.ffma_count = ((g.outputs * g.points) as f64 * ffma_factor) as u64 * it;
    // L2 sees the unique stream plus ~20% halo/granularity overhead.
    let l2_stream = (g.grid_points as f64 * 1.2) as u64 * elem;
    c.global_read_bytes = l2_stream * it;
    c.l2_hit_bytes = (l2_stream - g.grid_points * elem) * it;
    c.global_write_bytes = g.outputs * elem * it;
    // Every consumed operand crosses the L1/shared datapath.
    let operand_traffic = ((g.outputs * g.points * elem) as f64 * l1_factor) as u64;
    c.shared_read_bytes = operand_traffic * it;
    c.shared_write_bytes = g.grid_points * elem * it;
    finish_stats(gpu, precision, c, occupancy, g.outputs, g.points, iters)
}

/// The straightforward CUDA kernel: one thread per output point, operands
/// through L1 with uncoalesced-edge overhead (1.25× operand traffic) and
/// no arithmetic reuse.
pub struct NaiveCuda;

impl Baseline for NaiveCuda {
    fn name(&self) -> &'static str {
        "CUDA"
    }

    fn model(
        &self,
        kernel: &StencilKernel,
        grid_shape: [usize; 3],
        iters: usize,
        precision: Precision,
        gpu: &GpuConfig,
    ) -> Option<RunStats> {
        Some(cuda_core_model(
            kernel, grid_shape, iters, precision, gpu, 1.0, 1.25, 0.82,
        ))
    }
}

/// Brick-style fine-grained blocking \[Zhao et al., SC'19\]: data is
/// reorganized into small bricks so each input byte crosses DRAM once;
/// neighborhood reads resolve in shared memory / registers. Arithmetic is
/// unchanged from the naive kernel.
pub struct BrickLike;

impl Baseline for BrickLike {
    fn name(&self) -> &'static str {
        "Brick"
    }

    fn model(
        &self,
        kernel: &StencilKernel,
        grid_shape: [usize; 3],
        iters: usize,
        precision: Precision,
        gpu: &GpuConfig,
    ) -> Option<RunStats> {
        // Bricks eliminate the uncoalesced overhead (l1_factor 1.0) but
        // arithmetic is unchanged.
        Some(cuda_core_model(
            kernel, grid_shape, iters, precision, gpu, 1.0, 1.0, 0.9,
        ))
    }
}

/// DRStencil \[You et al., HPCC'21\]: fusion-partition optimization on
/// top of Brick-style reuse — common subexpressions across fused steps
/// cut the arithmetic per point (modelled at the 35% reduction the
/// paper's low-order kernels report).
pub struct DrStencilLike;

/// Fraction of FFMAs remaining after fusion-partition reuse.
const DR_FUSION_FACTOR: f64 = 0.65;

impl Baseline for DrStencilLike {
    fn name(&self) -> &'static str {
        "DRStencil"
    }

    fn model(
        &self,
        kernel: &StencilKernel,
        grid_shape: [usize; 3],
        iters: usize,
        precision: Precision,
        gpu: &GpuConfig,
    ) -> Option<RunStats> {
        // Fusion-partition reuse trims both the FFMAs and the operand
        // traffic that feed them.
        Some(cuda_core_model(
            kernel,
            grid_shape,
            iters,
            precision,
            gpu,
            DR_FUSION_FACTOR,
            DR_FUSION_FACTOR,
            0.92,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(b: &dyn Baseline, kernel: &StencilKernel) -> RunStats {
        b.model(
            kernel,
            [1, 2050, 2050],
            10,
            Precision::Fp16,
            &GpuConfig::a100(),
        )
        .unwrap()
    }

    #[test]
    fn brick_beats_naive() {
        let k = StencilKernel::box2d49p();
        assert!(
            stats(&BrickLike, &k).gstencil_per_sec > stats(&NaiveCuda, &k).gstencil_per_sec,
            "reuse must beat naive global reads"
        );
    }

    #[test]
    fn drstencil_at_least_matches_brick() {
        let k = StencilKernel::box2d49p();
        assert!(
            stats(&DrStencilLike, &k).gstencil_per_sec >= stats(&BrickLike, &k).gstencil_per_sec
        );
    }

    #[test]
    fn naive_is_compute_heavy_on_big_kernels() {
        let k = StencilKernel::box2d49p();
        let s = stats(&NaiveCuda, &k);
        assert!(s.counters.ffma_count > 0);
        // 49 FFMAs per point at FP16 CUDA-core rate is the binding side
        // for large kernels.
        assert!(s.timing.t_ffma > 0.0);
    }

    #[test]
    fn fp64_supported_by_cuda_core_models() {
        let k = StencilKernel::heat2d();
        for b in [&NaiveCuda as &dyn Baseline, &BrickLike, &DrStencilLike] {
            let s = b
                .model(&k, [1, 1026, 1026], 5, Precision::Fp64, &GpuConfig::a100())
                .unwrap();
            assert!(s.gflops_per_sec > 0.0);
        }
    }
}
