//! Dense fragment MMA — the functional core of the dense tensor-core path.
//!
//! One fragment op computes `C[m×n] += A[m×k] × B[k×n]` for the fixed
//! fragment geometry of the target hardware (§2.1: "sparse TCUs partition
//! matrices into uniformly sized fragments ... these fragments remain
//! fixed"). Operand precision is the caller's responsibility (operands are
//! pre-rounded once per buffer, as on real hardware where registers hold
//! already-converted FP16); accumulation happens at the full width of the
//! scalar type, matching the FP32-accumulate behaviour of tensor cores.

use crate::config::FragmentShape;
use sparstencil_mat::{DenseMatrix, Real};

/// Execute one dense fragment op: `c += a × b`.
///
/// # Panics
/// Panics if operand shapes do not match `frag` or if `frag.sparse`.
pub fn dense_fragment_mma<R: Real>(
    frag: FragmentShape,
    a: &DenseMatrix<R>,
    b: &DenseMatrix<R>,
    c: &mut DenseMatrix<R>,
) {
    assert!(!frag.sparse, "dense_fragment_mma requires a dense fragment");
    assert_eq!(a.shape(), (frag.m, frag.k), "A operand shape mismatch");
    assert_eq!(b.shape(), (frag.k, frag.n), "B operand shape mismatch");
    assert_eq!(c.shape(), (frag.m, frag.n), "C operand shape mismatch");
    for i in 0..frag.m {
        let a_row = a.row(i);
        for (kk, &aik) in a_row.iter().enumerate().take(frag.k) {
            if aik.is_zero() {
                // Dense hardware still spends the cycle; numerically a no-op.
                continue;
            }
            let b_row = b.row(kk);
            let c_row = c.row_mut(i);
            for j in 0..frag.n {
                c_row[j] += aik * b_row[j];
            }
        }
    }
}

/// A fragment `A` operand compiled to its nonzero multiply schedule.
///
/// Fragment operands are built once at plan time and then re-used for
/// every tile of every step, so the per-access work the plain MMA
/// routines repeat — zero tests, 2:4 metadata decoding, bounds checks —
/// can be hoisted into one flat `(b_row, value)` list per output row.
/// [`program_mma`] then executes exactly the multiplies the hardware's
/// useful lanes would, in the same order as [`dense_fragment_mma`] /
/// [`crate::sparse::sparse_fragment_mma`] (ascending stored index), so
/// results are bit-identical to the uncompiled routines.
#[derive(Debug, Clone)]
pub struct RowProgram<R: Real> {
    m: usize,
    k: usize,
    /// `(b_row_index, a_value)` pairs, all rows concatenated.
    entries: Vec<(u32, R)>,
    /// `row_ends[i]` = end of row `i`'s entries (prefix sums).
    row_ends: Vec<u32>,
}

impl<R: Real> RowProgram<R> {
    /// Compile a dense `m × k` fragment operand: one entry per nonzero,
    /// ascending column order (the order `dense_fragment_mma` multiplies
    /// in).
    pub fn from_dense(a: &DenseMatrix<R>) -> Self {
        let (m, k) = a.shape();
        let mut entries = Vec::new();
        let mut row_ends = Vec::with_capacity(m);
        for i in 0..m {
            for (kk, &v) in a.row(i).iter().enumerate() {
                if !v.is_zero() {
                    entries.push((kk as u32, v));
                }
            }
            row_ends.push(entries.len() as u32);
        }
        Self {
            m,
            k,
            entries,
            row_ends,
        }
    }

    /// Output rows `m`.
    pub fn rows(&self) -> usize {
        self.m
    }

    /// Logical operand depth `k` (the `B` operand must have `k` rows).
    pub fn depth(&self) -> usize {
        self.k
    }

    /// Total scheduled multiplies (nonzero `A` lanes).
    pub fn nnz(&self) -> usize {
        self.entries.len()
    }

    /// Entries of output row `i`.
    #[inline]
    pub fn row(&self, i: usize) -> &[(u32, R)] {
        let start = if i == 0 {
            0
        } else {
            self.row_ends[i - 1] as usize
        };
        &self.entries[start..self.row_ends[i] as usize]
    }

    /// Concatenate fragment programs along the depth axis: part `p`'s
    /// entries keep their per-row order with `b_row` indices offset by
    /// the cumulative depth of earlier parts. Executing the result
    /// against a stacked `B` (parts' `B` operands stacked row-wise) is
    /// arithmetically identical — same multiplies, same order — to
    /// executing the parts one after another against their own `B`s.
    ///
    /// # Panics
    /// Panics if `parts` is empty or the parts disagree on `m`.
    pub fn concat(parts: &[Self]) -> Self {
        assert!(!parts.is_empty(), "cannot concat zero programs");
        let m = parts[0].m;
        assert!(
            parts.iter().all(|p| p.m == m),
            "row-count mismatch in program concat"
        );
        let k: usize = parts.iter().map(|p| p.k).sum();
        let rows = (0..m)
            .map(|i| {
                let mut base = 0u32;
                let mut row = Vec::new();
                for p in parts {
                    row.extend(p.row(i).iter().map(|&(kk, v)| (base + kk, v)));
                    base += p.k as u32;
                }
                row
            })
            .collect();
        Self::from_rows(k, rows)
    }

    /// Copy with every empty row given one synthetic `(zero_row, ZERO)`
    /// entry, so an overwrite-first executor — where the first scheduled
    /// multiply of each row *stores* `v·b` instead of accumulating into a
    /// pre-zeroed register — still defines every output row. The
    /// synthetic multiply writes `0 · b[zero_row]`, numerically the zero
    /// the accumulate-from-zero path starts from; callers point
    /// `zero_row` at a known-zero `B` row (an operand padding row) when
    /// one exists so the store is exactly `+0`. Rows that already have
    /// entries are untouched, so the multiply schedule (and therefore
    /// bit-exactness against the plain path) is preserved.
    ///
    /// # Panics
    /// Panics if `zero_row` is outside the program depth.
    pub fn with_zero_fill_rows(&self, zero_row: usize) -> Self {
        assert!(zero_row < self.k, "synthetic row outside program depth");
        let rows = (0..self.m)
            .map(|i| {
                let row = self.row(i);
                if row.is_empty() {
                    vec![(zero_row as u32, R::ZERO)]
                } else {
                    row.to_vec()
                }
            })
            .collect();
        Self::from_rows(self.k, rows)
    }

    /// Copy with every entry's `B`-row index rewritten through `map`
    /// (`new_index = map[old_index]`) and the program depth set to
    /// `new_depth` — the rebasing step that retargets a program compiled
    /// against the logical operand layout onto a *staged* operand buffer
    /// with its own row order (e.g. the executor's sliding-window scratch
    /// ring, where rows are grouped by source plane and sorted by source
    /// locality). Entry order — and therefore multiply/accumulation
    /// order and bit-exactness — is preserved; only the `B` addressing
    /// changes.
    ///
    /// # Panics
    /// Panics if `map` is shorter than the program depth or maps an
    /// entry at or past `new_depth`.
    pub fn remap_rows(&self, map: &[u32], new_depth: usize) -> Self {
        assert!(map.len() >= self.k, "row map shorter than program depth");
        let entries: Vec<(u32, R)> = self
            .entries
            .iter()
            .map(|&(kk, v)| {
                let nk = map[kk as usize];
                assert!(
                    (nk as usize) < new_depth,
                    "row {kk} remapped to {nk}, outside the new depth {new_depth}"
                );
                (nk, v)
            })
            .collect();
        Self {
            m: self.m,
            k: new_depth,
            entries,
            row_ends: self.row_ends.clone(),
        }
    }

    /// Build directly from per-row entry lists (used by the sparse
    /// constructor). Entries' `b_row` indices must be `< k`.
    pub(crate) fn from_rows(k: usize, rows: Vec<Vec<(u32, R)>>) -> Self {
        let m = rows.len();
        let mut entries = Vec::new();
        let mut row_ends = Vec::with_capacity(m);
        for row in rows {
            debug_assert!(row.iter().all(|&(kk, _)| (kk as usize) < k));
            entries.extend(row);
            row_ends.push(entries.len() as u32);
        }
        Self {
            m,
            k,
            entries,
            row_ends,
        }
    }
}

/// A [`RowProgram`] re-laid-out for **register-blocked** execution:
/// output rows are grouped into fixed-size blocks of `block_rows`
/// consecutive rows, and every block whose rows all carry the *same*
/// entry count is additionally compiled into a step-major **lockstep**
/// entry stream — step `s` holds the `s`-th entry of each row in the
/// block, rows in order — so a kernel can hold `block_rows` accumulator
/// rows in registers and advance all of them one entry per step with a
/// single linear walk over the stream.
///
/// The blocked layout changes *addressing only*: each row's entries
/// appear in the lockstep stream in their original per-row order, so a
/// blocked executor performs exactly the multiplies of the row-serial
/// path, per row in the same order, into independent accumulators —
/// results are bit-identical to [`program_mma`]. Blocks that are ragged
/// (unequal entry counts), partial (fewer than `block_rows` rows at the
/// tail), or contain an empty row are left as `None` and executed
/// row-serially from the retained [`BlockedRowProgram::base`] program.
#[derive(Debug, Clone)]
pub struct BlockedRowProgram<R: Real> {
    base: RowProgram<R>,
    block_rows: usize,
    /// Per block: `Some((lockstep_start, steps))` for uniform blocks,
    /// `None` for blocks that fall back to row-serial execution.
    blocks: Vec<Option<(u32, u32)>>,
    /// Step-major entry stream of all uniform blocks: `steps ×
    /// block_rows` entries per block, rows in order within each step.
    lockstep: Vec<(u32, R)>,
}

impl<R: Real> BlockedRowProgram<R> {
    /// Compile the blocked layout for `base` with `block_rows` rows per
    /// block. Pure re-layout — the base program is retained verbatim
    /// (and drives the row-serial fallback for non-uniform blocks).
    ///
    /// # Panics
    /// Panics if `block_rows` is zero.
    pub fn compile(base: &RowProgram<R>, block_rows: usize) -> Self {
        assert!(block_rows > 0, "block_rows must be positive");
        let m = base.rows();
        let n_blocks = m.div_ceil(block_rows);
        let mut blocks = Vec::with_capacity(n_blocks);
        let mut lockstep = Vec::new();
        for bi in 0..n_blocks {
            let r0 = bi * block_rows;
            let rows_here = block_rows.min(m - r0);
            let steps = base.row(r0).len();
            let uniform = rows_here == block_rows
                && steps > 0
                && (1..rows_here).all(|r| base.row(r0 + r).len() == steps);
            if !uniform {
                blocks.push(None);
                continue;
            }
            let start = lockstep.len() as u32;
            for s in 0..steps {
                for r in 0..block_rows {
                    lockstep.push(base.row(r0 + r)[s]);
                }
            }
            blocks.push(Some((start, steps as u32)));
        }
        Self {
            base: base.clone(),
            block_rows,
            blocks,
            lockstep,
        }
    }

    /// The underlying row-serial program (same entries, same per-row
    /// order).
    pub fn base(&self) -> &RowProgram<R> {
        &self.base
    }

    /// Rows per register block.
    pub fn block_rows(&self) -> usize {
        self.block_rows
    }

    /// Per-block lockstep descriptors (`None` ⇒ row-serial fallback).
    pub fn blocks(&self) -> &[Option<(u32, u32)>] {
        &self.blocks
    }

    /// The step-major lockstep entry stream.
    pub fn lockstep(&self) -> &[(u32, R)] {
        &self.lockstep
    }

    /// Output rows `m` (delegates to the base program).
    pub fn rows(&self) -> usize {
        self.base.rows()
    }

    /// Logical operand depth `k` (delegates to the base program).
    pub fn depth(&self) -> usize {
        self.base.depth()
    }

    /// Total scheduled multiplies (delegates to the base program).
    pub fn nnz(&self) -> usize {
        self.base.nnz()
    }

    /// Entries of output row `i` (delegates to the base program).
    #[inline]
    pub fn row(&self, i: usize) -> &[(u32, R)] {
        self.base.row(i)
    }
}

/// Execute one fragment op from a blocked program: `c += program × b`,
/// driving uniform blocks through the lockstep stream and ragged blocks
/// through the base program. Reference executor for the blocked layout:
/// bit-identical to [`program_mma`] on the base program (same per-row
/// multiply order into independent accumulator rows).
///
/// # Panics
/// Panics if `b`/`c` shapes do not match the program geometry.
pub fn blocked_program_mma<R: Real>(
    prog: &BlockedRowProgram<R>,
    b: &DenseMatrix<R>,
    c: &mut DenseMatrix<R>,
) {
    assert_eq!(b.rows(), prog.depth(), "B operand depth mismatch");
    assert_eq!(
        c.shape(),
        (prog.rows(), b.cols()),
        "C operand shape mismatch"
    );
    let n = b.cols();
    let rb = prog.block_rows();
    let ls = prog.lockstep();
    for (bi, blk) in prog.blocks().iter().enumerate() {
        let r0 = bi * rb;
        let Some((start, steps)) = *blk else {
            // Ragged/partial block: row-serial from the base program.
            for i in r0..(r0 + rb).min(prog.rows()) {
                let c_row = c.row_mut(i);
                for &(kk, v) in prog.base().row(i) {
                    let b_row = &b.row(kk as usize)[..n];
                    for (cj, &bj) in c_row.iter_mut().zip(b_row) {
                        *cj += v * bj;
                    }
                }
            }
            continue;
        };
        let mut p = start as usize;
        for _ in 0..steps {
            for r in 0..rb {
                let (kk, v) = ls[p + r];
                let b_row = &b.row(kk as usize)[..n];
                let c_row = c.row_mut(r0 + r);
                for (cj, &bj) in c_row.iter_mut().zip(b_row) {
                    *cj += v * bj;
                }
            }
            p += rb;
        }
    }
}

/// Execute one fragment op from a compiled operand: `c += program × b`.
/// Bit-identical to the corresponding uncompiled MMA routine (same
/// multiply order, same skipped lanes).
///
/// # Panics
/// Panics if `b`/`c` shapes do not match the program geometry.
pub fn program_mma<R: Real>(prog: &RowProgram<R>, b: &DenseMatrix<R>, c: &mut DenseMatrix<R>) {
    assert_eq!(b.rows(), prog.k, "B operand depth mismatch");
    assert_eq!(c.shape(), (prog.m, b.cols()), "C operand shape mismatch");
    let n = b.cols();
    for i in 0..prog.m {
        let c_row = c.row_mut(i);
        for &(kk, v) in prog.row(i) {
            let b_row = &b.row(kk as usize)[..n];
            for (cj, &bj) in c_row.iter_mut().zip(b_row) {
                *cj += v * bj;
            }
        }
    }
}

/// Tile a large `C += A × B` into fragment ops, returning the number of
/// fragment operations a tensor-core kernel would issue (operands are
/// zero-padded to fragment boundaries, exactly like the `⌈·⌉` terms of
/// Equation 9). The computation itself runs at full precision on the
/// padded tiles.
///
/// # Panics
/// Panics if inner dimensions disagree.
pub fn tiled_dense_matmul<R: Real>(
    frag: FragmentShape,
    a: &DenseMatrix<R>,
    b: &DenseMatrix<R>,
) -> (DenseMatrix<R>, u64) {
    assert!(!frag.sparse, "tiled_dense_matmul requires a dense fragment");
    assert_eq!(a.cols(), b.rows(), "inner dimension mismatch");
    let (m, k, n) = (a.rows(), a.cols(), b.cols());
    let (fm, fk, fn_) = (frag.m, frag.k, frag.n);
    let (tm, tk, tn) = (m.div_ceil(fm), k.div_ceil(fk), n.div_ceil(fn_));

    let mut c = DenseMatrix::zeros(tm * fm, tn * fn_);
    let mut ops = 0u64;
    for ti in 0..tm {
        for tj in 0..tn {
            let mut c_frag = DenseMatrix::zeros(fm, fn_);
            for tkk in 0..tk {
                let a_frag = a.block(ti * fm, tkk * fk, fm, fk);
                let b_frag = b.block(tkk * fk, tj * fn_, fk, fn_);
                dense_fragment_mma(frag, &a_frag, &b_frag, &mut c_frag);
                ops += 1;
            }
            c.set_block(ti * fm, tj * fn_, &c_frag);
        }
    }
    (c.block(0, 0, m, n), ops)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparstencil_mat::gemm;

    #[test]
    fn fragment_mma_matches_gemm() {
        let frag = FragmentShape {
            m: 4,
            n: 3,
            k: 5,
            sparse: false,
        };
        let a = DenseMatrix::from_fn(4, 5, |r, c| ((r * 5 + c) % 7) as f64 - 3.0);
        let b = DenseMatrix::from_fn(5, 3, |r, c| ((r * 3 + c) % 5) as f64 - 2.0);
        let mut c = DenseMatrix::from_fn(4, 3, |r, c| (r + c) as f64);
        let expect = {
            let mut e = gemm::matmul(&a, &b);
            for r in 0..4 {
                for cc in 0..3 {
                    let v = e.get(r, cc) + (r + cc) as f64;
                    e.set(r, cc, v);
                }
            }
            e
        };
        dense_fragment_mma(frag, &a, &b, &mut c);
        assert_eq!(c, expect);
    }

    #[test]
    fn tiled_matmul_matches_gemm_and_counts_ops() {
        let frag = FragmentShape::dense_fp16(); // 16×8×16
        let a = DenseMatrix::from_fn(20, 35, |r, c| ((r * 13 + c * 7) % 11) as f64 - 5.0);
        let b = DenseMatrix::from_fn(35, 17, |r, c| ((r * 3 + c * 5) % 9) as f64 - 4.0);
        let (c, ops) = tiled_dense_matmul(frag, &a, &b);
        assert_eq!(c, gemm::matmul(&a, &b));
        // ⌈20/16⌉ ⌈35/16⌉ ⌈17/8⌉ = 2 * 3 * 3 = 18 ops (Equation 9).
        assert_eq!(ops, 18);
    }

    #[test]
    #[should_panic(expected = "A operand shape mismatch")]
    fn wrong_shape_panics() {
        let frag = FragmentShape::dense_fp16();
        let a = DenseMatrix::<f32>::zeros(8, 16);
        let b = DenseMatrix::<f32>::zeros(16, 8);
        let mut c = DenseMatrix::<f32>::zeros(16, 8);
        dense_fragment_mma(frag, &a, &b, &mut c);
    }

    #[test]
    #[should_panic(expected = "dense fragment")]
    fn sparse_fragment_rejected() {
        let frag = FragmentShape::sparse_fp16();
        let a = DenseMatrix::<f32>::zeros(16, 32);
        let b = DenseMatrix::<f32>::zeros(32, 8);
        let mut c = DenseMatrix::<f32>::zeros(16, 8);
        dense_fragment_mma(frag, &a, &b, &mut c);
    }

    #[test]
    fn program_mma_matches_dense_fragment_mma() {
        let frag = FragmentShape::dense_fp16();
        let a = DenseMatrix::from_fn(16, 16, |r, c| {
            if (r + c) % 3 == 0 {
                0.0f32
            } else {
                ((r * 7 + c * 5) % 11) as f32 - 5.0
            }
        });
        let b = DenseMatrix::from_fn(16, 8, |r, c| ((r * 3 + c) % 9) as f32 - 4.0);
        let prog = RowProgram::from_dense(&a);
        assert_eq!(prog.rows(), 16);
        assert_eq!(prog.depth(), 16);
        assert_eq!(prog.nnz(), a.nnz());
        let mut c1 = DenseMatrix::from_fn(16, 8, |r, c| (r + c) as f32);
        let mut c2 = c1.clone();
        dense_fragment_mma(frag, &a, &b, &mut c1);
        program_mma(&prog, &b, &mut c2);
        assert_eq!(c1, c2, "compiled program must be bit-identical");
    }

    #[test]
    fn concat_matches_sequential_execution() {
        let a1 = DenseMatrix::from_fn(4, 6, |r, c| {
            if (r + c) % 2 == 0 {
                0.0
            } else {
                (r * 6 + c) as f64
            }
        });
        let a2 = DenseMatrix::from_fn(4, 10, |r, c| {
            if c % 3 == 0 {
                (r + c) as f64 - 3.0
            } else {
                0.0
            }
        });
        let p1 = RowProgram::from_dense(&a1);
        let p2 = RowProgram::from_dense(&a2);
        let merged = RowProgram::concat(&[p1.clone(), p2.clone()]);
        assert_eq!(merged.depth(), 16);
        assert_eq!(merged.nnz(), p1.nnz() + p2.nnz());

        let b1 = DenseMatrix::from_fn(6, 5, |r, c| ((r * 5 + c) % 7) as f64 - 3.0);
        let b2 = DenseMatrix::from_fn(10, 5, |r, c| ((r * 3 + c) % 5) as f64 - 2.0);
        let mut stacked = DenseMatrix::zeros(16, 5);
        stacked.set_block(0, 0, &b1);
        stacked.set_block(6, 0, &b2);

        let mut c_seq = DenseMatrix::zeros(4, 5);
        program_mma(&p1, &b1, &mut c_seq);
        program_mma(&p2, &b2, &mut c_seq);
        let mut c_merged = DenseMatrix::zeros(4, 5);
        program_mma(&merged, &stacked, &mut c_merged);
        assert_eq!(c_seq, c_merged, "concat must be bit-identical");
    }

    #[test]
    fn zero_fill_rows_defines_empty_rows_only() {
        // Rows 0 and 2 populated, rows 1 and 3 empty.
        let a = DenseMatrix::from_fn(4, 6, |r, c| {
            if r % 2 == 0 && c % 2 == 1 {
                (r * 6 + c) as f64
            } else {
                0.0
            }
        });
        let p = RowProgram::from_dense(&a);
        let filled = p.with_zero_fill_rows(5);
        assert_eq!(filled.rows(), 4);
        assert_eq!(filled.depth(), 6);
        assert_eq!(filled.row(0), p.row(0), "populated rows untouched");
        assert_eq!(filled.row(1), &[(5u32, 0.0f64)], "empty row gets zero op");
        assert_eq!(filled.nnz(), p.nnz() + 2);
        // Execution is unchanged: the synthetic entries multiply by zero.
        let b = DenseMatrix::from_fn(6, 3, |r, c| ((r * 3 + c) % 7) as f64 - 3.0);
        let mut c1 = DenseMatrix::zeros(4, 3);
        let mut c2 = DenseMatrix::zeros(4, 3);
        program_mma(&p, &b, &mut c1);
        program_mma(&filled, &b, &mut c2);
        assert_eq!(c1, c2);
    }

    #[test]
    fn remap_rows_matches_permuted_b() {
        // Rebasing a program onto a shuffled-and-widened B layout must
        // reproduce the original product exactly when B's rows are moved
        // to their mapped positions.
        let a = DenseMatrix::from_fn(4, 6, |r, c| {
            if (r + 2 * c) % 3 == 0 {
                0.0f64
            } else {
                (r * 6 + c) as f64 - 7.0
            }
        });
        let prog = RowProgram::from_dense(&a);
        // Old row i -> new row (reversed order, offset into a depth-9
        // buffer whose extra rows are never referenced).
        let map: Vec<u32> = (0..6).map(|i| (8 - i) as u32).collect();
        let remapped = prog.remap_rows(&map, 9);
        assert_eq!(remapped.rows(), prog.rows());
        assert_eq!(remapped.depth(), 9);
        assert_eq!(remapped.nnz(), prog.nnz());

        let b = DenseMatrix::from_fn(6, 5, |r, c| ((r * 5 + c) % 11) as f64 - 5.0);
        let mut b_wide = DenseMatrix::zeros(9, 5);
        for (r, &target) in map.iter().enumerate() {
            b_wide.row_mut(target as usize).copy_from_slice(b.row(r));
        }
        let mut c1 = DenseMatrix::zeros(4, 5);
        let mut c2 = DenseMatrix::zeros(4, 5);
        program_mma(&prog, &b, &mut c1);
        program_mma(&remapped, &b_wide, &mut c2);
        assert_eq!(c1, c2, "rebased program must be bit-identical");
    }

    #[test]
    #[should_panic(expected = "outside the new depth")]
    fn remap_rows_rejects_out_of_depth_targets() {
        let prog = RowProgram::from_dense(&DenseMatrix::<f32>::identity(4));
        let map = vec![0u32, 1, 5, 3];
        let _ = prog.remap_rows(&map, 4);
    }

    #[test]
    #[should_panic(expected = "depth mismatch")]
    fn program_mma_checks_depth() {
        let prog = RowProgram::from_dense(&DenseMatrix::<f32>::identity(4));
        let b = DenseMatrix::<f32>::zeros(5, 3);
        let mut c = DenseMatrix::<f32>::zeros(4, 3);
        program_mma(&prog, &b, &mut c);
    }

    #[test]
    fn blocked_program_layout_separates_uniform_and_ragged_blocks() {
        // 8 rows, block_rows = 4: rows 0–3 all have 2 entries (uniform),
        // rows 4–7 have unequal counts (ragged).
        let a = DenseMatrix::from_fn(8, 6, |r, c| {
            let keep = if r < 4 { c < 2 } else { c < 1 + r % 3 };
            if keep {
                (r * 6 + c + 1) as f64
            } else {
                0.0
            }
        });
        let base = RowProgram::from_dense(&a);
        let blocked = BlockedRowProgram::compile(&base, 4);
        assert_eq!(blocked.rows(), 8);
        assert_eq!(blocked.depth(), 6);
        assert_eq!(blocked.nnz(), base.nnz());
        assert_eq!(blocked.blocks().len(), 2);
        let (start, steps) = blocked.blocks()[0].expect("block 0 is uniform");
        assert_eq!((start, steps), (0, 2));
        assert_eq!(blocked.blocks()[1], None, "ragged block falls back");
        // Step-major stream: step s holds row r's s-th entry at s·4 + r.
        for s in 0..2 {
            for r in 0..4 {
                assert_eq!(blocked.lockstep()[s * 4 + r], base.row(r)[s]);
            }
        }
    }

    #[test]
    fn blocked_program_rejects_partial_and_empty_blocks() {
        // 6 rows at block_rows = 4: the tail block has only 2 rows.
        let uniform =
            RowProgram::from_dense(&DenseMatrix::from_fn(6, 4, |r, c| (r * 4 + c + 1) as f32));
        let blocked = BlockedRowProgram::compile(&uniform, 4);
        assert!(blocked.blocks()[0].is_some());
        assert_eq!(blocked.blocks()[1], None, "partial tail block falls back");
        // A block containing an empty row is never lockstep (steps = 0
        // would make the overwrite-first kernel skip the row's store).
        let holey = RowProgram::from_dense(&DenseMatrix::from_fn(4, 4, |r, _| {
            if r == 2 {
                0.0f32
            } else {
                1.0
            }
        }));
        assert_eq!(BlockedRowProgram::compile(&holey, 4).blocks(), &[None]);
    }

    #[test]
    fn blocked_program_mma_matches_row_program_mma() {
        // Mix of uniform, ragged, and partial blocks across both Real
        // types; values chosen so accumulation order matters in the low
        // bits if an executor got it wrong.
        let a = DenseMatrix::from_fn(10, 7, |r, c| {
            let keep = if r < 4 { c % 2 == 0 } else { (r + c) % 3 != 0 };
            if keep {
                ((r * 7 + c * 13) % 23) as f64 / 7.0 - 1.5
            } else {
                0.0
            }
        });
        let base = RowProgram::from_dense(&a);
        let blocked = BlockedRowProgram::compile(&base, 4);
        let b = DenseMatrix::from_fn(7, 5, |r, c| ((r * 5 + c * 3) % 17) as f64 / 11.0 - 0.7);
        let mut c1 = DenseMatrix::from_fn(10, 5, |r, c| (r + c) as f64 * 0.25);
        let mut c2 = c1.clone();
        program_mma(&base, &b, &mut c1);
        blocked_program_mma(&blocked, &b, &mut c2);
        assert_eq!(c1, c2, "blocked layout must be bit-identical");
    }

    #[test]
    fn exact_tile_boundaries_no_padding_waste() {
        let frag = FragmentShape {
            m: 2,
            n: 2,
            k: 2,
            sparse: false,
        };
        let a = DenseMatrix::from_fn(4, 4, |r, c| (r * 4 + c) as f64);
        let b = DenseMatrix::identity(4);
        let (c, ops) = tiled_dense_matmul(frag, &a, &b);
        assert_eq!(c, a);
        assert_eq!(ops, 2 * 2 * 2);
    }
}
