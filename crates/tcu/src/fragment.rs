//! Dense fragment MMA — the functional core of the dense tensor-core path.
//!
//! One fragment op computes `C[m×n] += A[m×k] × B[k×n]` for the fixed
//! fragment geometry of the target hardware (§2.1: "sparse TCUs partition
//! matrices into uniformly sized fragments ... these fragments remain
//! fixed"). Operand precision is the caller's responsibility (operands are
//! pre-rounded once per buffer, as on real hardware where registers hold
//! already-converted FP16); accumulation happens at the full width of the
//! scalar type, matching the FP32-accumulate behaviour of tensor cores.

use crate::config::FragmentShape;
use sparstencil_mat::{DenseMatrix, Real};

/// Execute one dense fragment op: `c += a × b`.
///
/// # Panics
/// Panics if operand shapes do not match `frag` or if `frag.sparse`.
pub fn dense_fragment_mma<R: Real>(
    frag: FragmentShape,
    a: &DenseMatrix<R>,
    b: &DenseMatrix<R>,
    c: &mut DenseMatrix<R>,
) {
    assert!(!frag.sparse, "dense_fragment_mma requires a dense fragment");
    assert_eq!(a.shape(), (frag.m, frag.k), "A operand shape mismatch");
    assert_eq!(b.shape(), (frag.k, frag.n), "B operand shape mismatch");
    assert_eq!(c.shape(), (frag.m, frag.n), "C operand shape mismatch");
    for i in 0..frag.m {
        let a_row = a.row(i);
        for kk in 0..frag.k {
            let aik = a_row[kk];
            if aik.is_zero() {
                // Dense hardware still spends the cycle; numerically a no-op.
                continue;
            }
            let b_row = b.row(kk);
            let c_row = c.row_mut(i);
            for j in 0..frag.n {
                c_row[j] += aik * b_row[j];
            }
        }
    }
}

/// Tile a large `C += A × B` into fragment ops, returning the number of
/// fragment operations a tensor-core kernel would issue (operands are
/// zero-padded to fragment boundaries, exactly like the `⌈·⌉` terms of
/// Equation 9). The computation itself runs at full precision on the
/// padded tiles.
///
/// # Panics
/// Panics if inner dimensions disagree.
pub fn tiled_dense_matmul<R: Real>(
    frag: FragmentShape,
    a: &DenseMatrix<R>,
    b: &DenseMatrix<R>,
) -> (DenseMatrix<R>, u64) {
    assert!(!frag.sparse, "tiled_dense_matmul requires a dense fragment");
    assert_eq!(a.cols(), b.rows(), "inner dimension mismatch");
    let (m, k, n) = (a.rows(), a.cols(), b.cols());
    let (fm, fk, fn_) = (frag.m, frag.k, frag.n);
    let (tm, tk, tn) = (m.div_ceil(fm), k.div_ceil(fk), n.div_ceil(fn_));

    let mut c = DenseMatrix::zeros(tm * fm, tn * fn_);
    let mut ops = 0u64;
    for ti in 0..tm {
        for tj in 0..tn {
            let mut c_frag = DenseMatrix::zeros(fm, fn_);
            for tkk in 0..tk {
                let a_frag = a.block(ti * fm, tkk * fk, fm, fk);
                let b_frag = b.block(tkk * fk, tj * fn_, fk, fn_);
                dense_fragment_mma(frag, &a_frag, &b_frag, &mut c_frag);
                ops += 1;
            }
            c.set_block(ti * fm, tj * fn_, &c_frag);
        }
    }
    (c.block(0, 0, m, n), ops)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparstencil_mat::gemm;

    #[test]
    fn fragment_mma_matches_gemm() {
        let frag = FragmentShape { m: 4, n: 3, k: 5, sparse: false };
        let a = DenseMatrix::from_fn(4, 5, |r, c| ((r * 5 + c) % 7) as f64 - 3.0);
        let b = DenseMatrix::from_fn(5, 3, |r, c| ((r * 3 + c) % 5) as f64 - 2.0);
        let mut c = DenseMatrix::from_fn(4, 3, |r, c| (r + c) as f64);
        let expect = {
            let mut e = gemm::matmul(&a, &b);
            for r in 0..4 {
                for cc in 0..3 {
                    let v = e.get(r, cc) + (r + cc) as f64;
                    e.set(r, cc, v);
                }
            }
            e
        };
        dense_fragment_mma(frag, &a, &b, &mut c);
        assert_eq!(c, expect);
    }

    #[test]
    fn tiled_matmul_matches_gemm_and_counts_ops() {
        let frag = FragmentShape::dense_fp16(); // 16×8×16
        let a = DenseMatrix::from_fn(20, 35, |r, c| ((r * 13 + c * 7) % 11) as f64 - 5.0);
        let b = DenseMatrix::from_fn(35, 17, |r, c| ((r * 3 + c * 5) % 9) as f64 - 4.0);
        let (c, ops) = tiled_dense_matmul(frag, &a, &b);
        assert_eq!(c, gemm::matmul(&a, &b));
        // ⌈20/16⌉ ⌈35/16⌉ ⌈17/8⌉ = 2 * 3 * 3 = 18 ops (Equation 9).
        assert_eq!(ops, 18);
    }

    #[test]
    #[should_panic(expected = "A operand shape mismatch")]
    fn wrong_shape_panics() {
        let frag = FragmentShape::dense_fp16();
        let a = DenseMatrix::<f32>::zeros(8, 16);
        let b = DenseMatrix::<f32>::zeros(16, 8);
        let mut c = DenseMatrix::<f32>::zeros(16, 8);
        dense_fragment_mma(frag, &a, &b, &mut c);
    }

    #[test]
    #[should_panic(expected = "dense fragment")]
    fn sparse_fragment_rejected() {
        let frag = FragmentShape::sparse_fp16();
        let a = DenseMatrix::<f32>::zeros(16, 32);
        let b = DenseMatrix::<f32>::zeros(32, 8);
        let mut c = DenseMatrix::<f32>::zeros(16, 8);
        dense_fragment_mma(frag, &a, &b, &mut c);
    }

    #[test]
    fn exact_tile_boundaries_no_padding_waste() {
        let frag = FragmentShape { m: 2, n: 2, k: 2, sparse: false };
        let a = DenseMatrix::from_fn(4, 4, |r, c| (r * 4 + c) as f64);
        let b = DenseMatrix::identity(4);
        let (c, ops) = tiled_dense_matmul(frag, &a, &b);
        assert_eq!(c, a);
        assert_eq!(ops, 2 * 2 * 2);
    }
}
