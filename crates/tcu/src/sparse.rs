//! Sparse (2:4) fragment MMA — the functional core of `mma.sp`.
//!
//! One sparse fragment op computes `C[m×n] += (A ⊙ M)[m×k] × B[k×n]`
//! where `A` arrives *compressed* (stored depth `k/2`) together with 2-bit
//! metadata (Equation 1). The arithmetic reads only the stored values and
//! uses metadata to select which `B` rows they multiply — exactly the
//! dataflow of the hardware instruction, which is why this routine's
//! agreement with masked dense MMA is a property-tested invariant.

use crate::config::FragmentShape;
use sparstencil_mat::{DenseMatrix, Real, TwoFourMatrix};

/// Execute one sparse fragment op: `c += decompress(a24) × b`, computed
/// directly from the compressed representation.
///
/// # Panics
/// Panics if the fragment is not sparse or operand shapes mismatch
/// (`a24` must be `m × k` logical, `b` must be `k × n`, `c` `m × n`).
pub fn sparse_fragment_mma<R: Real>(
    frag: FragmentShape,
    a24: &TwoFourMatrix<R>,
    b: &DenseMatrix<R>,
    c: &mut DenseMatrix<R>,
) {
    assert!(
        frag.sparse,
        "sparse_fragment_mma requires a sparse fragment"
    );
    assert_eq!(a24.rows(), frag.m, "A operand row mismatch");
    assert_eq!(
        a24.logical_cols(),
        frag.k,
        "A operand logical depth mismatch"
    );
    assert_eq!(b.shape(), (frag.k, frag.n), "B operand shape mismatch");
    assert_eq!(c.shape(), (frag.m, frag.n), "C operand shape mismatch");

    for i in 0..frag.m {
        let c_row_ptr: *mut R = c.row_mut(i).as_mut_ptr();
        for s in 0..a24.stored_cols() {
            let v = a24.values().get(i, s);
            if v.is_zero() {
                // Promoted zero slot: hardware multiplies it anyway; the
                // numeric result is unchanged, so we skip the work.
                continue;
            }
            let k = a24.logical_col(i, s);
            let b_row = b.row(k);
            // Safety: c_row_ptr addresses row i of c, disjoint from b.
            let c_row = unsafe { std::slice::from_raw_parts_mut(c_row_ptr, frag.n) };
            for j in 0..frag.n {
                c_row[j] += v * b_row[j];
            }
        }
    }
}

impl<R: Real> crate::fragment::RowProgram<R> {
    /// Compile a compressed 2:4 operand: one entry per nonzero *stored*
    /// element, ascending stored order with the metadata already decoded
    /// to logical `B` rows — exactly the lanes (and order)
    /// [`sparse_fragment_mma`] multiplies, with the per-access metadata
    /// decode hoisted to compile time.
    pub fn from_two_four(a24: &TwoFourMatrix<R>) -> Self {
        let rows = (0..a24.rows())
            .map(|i| {
                (0..a24.stored_cols())
                    .filter_map(|s| {
                        let v = a24.values().get(i, s);
                        if v.is_zero() {
                            None
                        } else {
                            Some((a24.logical_col(i, s) as u32, v))
                        }
                    })
                    .collect()
            })
            .collect();
        Self::from_rows(a24.logical_cols(), rows)
    }
}

/// Tile a large compressed `C += A24 × B` into sparse fragment ops along
/// `n` (the `k` dimension must equal one fragment's logical depth — the
/// layout generator splits `A` into per-fragment compressed strips).
/// Returns the op count.
pub fn tiled_sparse_matmul_n<R: Real>(
    frag: FragmentShape,
    a24: &TwoFourMatrix<R>,
    b: &DenseMatrix<R>,
) -> (DenseMatrix<R>, u64) {
    assert!(frag.sparse, "requires a sparse fragment");
    assert_eq!(a24.rows(), frag.m, "A rows must equal fragment m");
    assert_eq!(a24.logical_cols(), frag.k, "A depth must equal fragment k");
    assert_eq!(b.rows(), frag.k, "B rows mismatch");
    let n = b.cols();
    let tn = n.div_ceil(frag.n);
    let mut c = DenseMatrix::zeros(frag.m, tn * frag.n);
    let mut ops = 0u64;
    for tj in 0..tn {
        let b_frag = b.block(0, tj * frag.n, frag.k, frag.n);
        let mut c_frag = DenseMatrix::zeros(frag.m, frag.n);
        sparse_fragment_mma(frag, a24, &b_frag, &mut c_frag);
        ops += 1;
        c.set_block(0, tj * frag.n, &c_frag);
    }
    (c.block(0, 0, frag.m, n), ops)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparstencil_mat::gemm;

    /// A 2:4-compatible 16×32 matrix with mixed 0:4 / 1:4 / 2:4 groups.
    fn sample_a() -> DenseMatrix<f64> {
        DenseMatrix::from_fn(16, 32, |r, c| {
            let g = c / 4;
            let pos = c % 4;
            // Deterministic pattern: group parity decides which 2 slots
            // are nonzero; some groups left emptier.
            match (r + g) % 3 {
                0 if (pos == 0 || pos == 2) => ((r * 31 + c * 7) % 9) as f64 - 4.0,
                1 if pos == 1 => ((r * 13 + c) % 5) as f64 - 2.0,
                _ => 0.0,
            }
        })
    }

    #[test]
    fn sparse_mma_matches_masked_dense() {
        let frag = FragmentShape::sparse_fp16();
        let a = sample_a();
        let a24 = TwoFourMatrix::compress(&a).unwrap();
        let b = DenseMatrix::from_fn(32, 8, |r, c| ((r * 5 + c * 3) % 7) as f64 - 3.0);
        let mut c = DenseMatrix::zeros(16, 8);
        sparse_fragment_mma(frag, &a24, &b, &mut c);
        assert_eq!(c, gemm::matmul(&a, &b));
    }

    #[test]
    fn accumulation_adds_to_existing_c() {
        let frag = FragmentShape::sparse_fp16();
        let a = sample_a();
        let a24 = TwoFourMatrix::compress(&a).unwrap();
        let b = DenseMatrix::from_fn(32, 8, |r, c| (r + c) as f64 * 0.25);
        let mut c = DenseMatrix::from_fn(16, 8, |_, _| 100.0);
        sparse_fragment_mma(frag, &a24, &b, &mut c);
        let mut expect = gemm::matmul(&a, &b);
        expect.map_inplace(|v| v + 100.0);
        assert_eq!(c, expect);
    }

    #[test]
    fn tiled_n_sweep_matches_gemm() {
        let frag = FragmentShape::sparse_fp16();
        let a = sample_a();
        let a24 = TwoFourMatrix::compress(&a).unwrap();
        let b = DenseMatrix::from_fn(32, 21, |r, c| ((r * 11 + c * 3) % 13) as f64 - 6.0);
        let (c, ops) = tiled_sparse_matmul_n(frag, &a24, &b);
        assert_eq!(c, gemm::matmul(&a, &b));
        assert_eq!(ops, 3); // ⌈21/8⌉
    }

    #[test]
    fn compiled_program_matches_sparse_mma() {
        let frag = FragmentShape::sparse_fp16();
        let a = sample_a();
        let a24 = TwoFourMatrix::compress(&a).unwrap();
        let prog = crate::fragment::RowProgram::from_two_four(&a24);
        let b = DenseMatrix::from_fn(32, 8, |r, c| ((r * 7 + c * 3) % 9) as f64 - 4.0);
        let mut c1 = DenseMatrix::from_fn(16, 8, |r, c| (r * 8 + c) as f64 * 0.5);
        let mut c2 = c1.clone();
        sparse_fragment_mma(frag, &a24, &b, &mut c1);
        crate::fragment::program_mma(&prog, &b, &mut c2);
        assert_eq!(c1, c2, "compiled program must be bit-identical");
        assert_eq!(prog.nnz(), a.nnz());
    }

    #[test]
    #[should_panic(expected = "sparse fragment")]
    fn dense_fragment_rejected() {
        let frag = FragmentShape::dense_fp16();
        let a = DenseMatrix::<f64>::zeros(16, 32);
        let a24 = TwoFourMatrix::compress(&a).unwrap();
        let b = DenseMatrix::<f64>::zeros(32, 8);
        let mut c = DenseMatrix::<f64>::zeros(16, 8);
        sparse_fragment_mma(frag, &a24, &b, &mut c);
    }

    #[test]
    #[should_panic(expected = "logical depth mismatch")]
    fn wrong_depth_panics() {
        let frag = FragmentShape::sparse_fp16();
        let a = DenseMatrix::<f64>::zeros(16, 16);
        let a24 = TwoFourMatrix::compress(&a).unwrap();
        let b = DenseMatrix::<f64>::zeros(32, 8);
        let mut c = DenseMatrix::<f64>::zeros(16, 8);
        sparse_fragment_mma(frag, &a24, &b, &mut c);
    }
}
