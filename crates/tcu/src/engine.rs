//! The execution engine: functional simulation + exact activity counting.
//!
//! An [`Engine`] executes fragment operations numerically (so end-to-end
//! results can be verified against scalar references) while recording
//! every op and byte in [`Counters`]. Timing never comes from wall-clock
//! measurement of the simulation itself — it is derived from the counters
//! through the analytic model (Equations 6–8), the same way the paper's
//! layout explorer reasons about kernels. This separation is what lets
//! benchmark binaries evaluate paper-scale problem sizes analytically
//! while tests verify numerics at CI-friendly scale.
//!
//! Parallel use: clone engines per worker (cheap — counters are plain
//! integers), execute disjoint tile ranges, then [`Counters::merge`] the
//! results. The numeric output is deterministic because tiles are
//! disjoint.

use crate::config::{FragmentShape, GpuConfig};
use crate::counters::Counters;
use crate::fragment::dense_fragment_mma;
use crate::model::{self, TimingBreakdown, UtilizationReport};
use crate::sparse::sparse_fragment_mma;
use sparstencil_mat::half::Precision;
use sparstencil_mat::{DenseMatrix, Real, TwoFourMatrix};

/// Functional simulator with exact activity counters.
#[derive(Debug, Clone)]
pub struct Engine {
    /// Hardware parameters used for timing derivation.
    pub config: GpuConfig,
    /// Operand precision (used for timing; numerics use pre-rounded
    /// buffers supplied by the caller).
    pub precision: Precision,
    /// Accumulated activity.
    pub counters: Counters,
}

impl Engine {
    /// New engine over the given hardware and precision.
    pub fn new(config: GpuConfig, precision: Precision) -> Self {
        Self {
            config,
            precision,
            counters: Counters::new(),
        }
    }

    /// Fresh engine sharing config/precision but with zeroed counters —
    /// for per-worker counting in parallel execution.
    pub fn fork(&self) -> Self {
        Self {
            config: self.config.clone(),
            precision: self.precision,
            counters: Counters::new(),
        }
    }

    /// Absorb a forked worker's counters.
    pub fn join(&mut self, worker: &Engine) {
        self.counters.merge(&worker.counters);
    }

    /// Execute and count one dense fragment MMA: `c += a × b`.
    pub fn dense_mma<R: Real>(
        &mut self,
        frag: FragmentShape,
        a: &DenseMatrix<R>,
        b: &DenseMatrix<R>,
        c: &mut DenseMatrix<R>,
    ) {
        dense_fragment_mma(frag, a, b, c);
        self.counters.dense_mma_count += 1;
        self.counters.tc_executed_flops += frag.executed_flops();
    }

    /// Execute and count one sparse fragment MMA from compressed `A`.
    pub fn sparse_mma<R: Real>(
        &mut self,
        frag: FragmentShape,
        a24: &TwoFourMatrix<R>,
        b: &DenseMatrix<R>,
        c: &mut DenseMatrix<R>,
    ) {
        sparse_fragment_mma(frag, a24, b, c);
        self.counters.sparse_mma_count += 1;
        self.counters.tc_executed_flops += frag.executed_flops();
    }

    /// Account for `count` fragment MMAs executed outside the engine
    /// (the plan executor runs compiled row programs itself and reports
    /// the exact op count in bulk — the count is closed-form from plan
    /// geometry, so per-op bookkeeping in the hot loop is unnecessary).
    pub fn record_mma_bulk(&mut self, frag: FragmentShape, sparse: bool, count: u64) {
        if sparse {
            self.counters.sparse_mma_count += count;
        } else {
            self.counters.dense_mma_count += count;
        }
        self.counters.tc_executed_flops += count * frag.executed_flops();
    }

    /// Count `count` scalar FFMA operations (CUDA-core path). The caller
    /// performs the arithmetic (baselines compute through the reference
    /// implementation); the engine only accounts for time.
    pub fn ffma(&mut self, count: u64) {
        self.counters.ffma_count += count;
    }

    /// Count a global-memory read. `l2_hit_fraction` of the bytes are
    /// served by L2 (tile-overlap reuse estimated by the caller's access
    /// pattern analysis).
    pub fn read_global(&mut self, bytes: u64, l2_hit_fraction: f64) {
        debug_assert!((0.0..=1.0).contains(&l2_hit_fraction));
        self.counters.global_read_bytes += bytes;
        self.counters.l2_hit_bytes += (bytes as f64 * l2_hit_fraction) as u64;
    }

    /// Count a global-memory write.
    pub fn write_global(&mut self, bytes: u64) {
        self.counters.global_write_bytes += bytes;
    }

    /// Count a shared-memory write (global→shared staging).
    pub fn smem_write(&mut self, bytes: u64) {
        self.counters.shared_write_bytes += bytes;
    }

    /// Count a shared-memory read (shared→register operand fetch).
    pub fn smem_read(&mut self, bytes: u64) {
        self.counters.shared_read_bytes += bytes;
    }

    /// Count one kernel launch.
    pub fn launch(&mut self) {
        self.counters.kernel_launches += 1;
    }

    /// Modelled kernel time over the accumulated counters.
    pub fn timing(&self) -> TimingBreakdown {
        model::kernel_time(&self.config, &self.counters, self.precision)
    }

    /// Figure-11 utilization metrics for the accumulated counters.
    pub fn utilization(&self, occupancy: f64) -> UtilizationReport {
        let t = self.timing();
        model::utilization(&self.config, &self.counters, &t, occupancy)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparstencil_mat::gemm;

    #[test]
    fn engine_counts_and_computes() {
        let mut e = Engine::new(GpuConfig::a100(), Precision::Fp16);
        let frag = FragmentShape::dense_fp16();
        let a = DenseMatrix::from_fn(16, 16, |r, c| ((r + c) % 3) as f32);
        let b = DenseMatrix::from_fn(16, 8, |r, c| ((r * c) % 5) as f32);
        let mut c = DenseMatrix::zeros(16, 8);
        e.dense_mma(frag, &a, &b, &mut c);
        assert_eq!(c, gemm::matmul(&a, &b));
        assert_eq!(e.counters.dense_mma_count, 1);
        assert_eq!(e.counters.tc_executed_flops, frag.executed_flops());
    }

    #[test]
    fn sparse_counting_matches_dense_flops() {
        let mut e = Engine::new(GpuConfig::a100(), Precision::Fp16);
        let frag = FragmentShape::sparse_fp16();
        let a = DenseMatrix::from_fn(
            16,
            32,
            |r, c| if c % 4 < 2 { ((r + c) % 7) as f32 } else { 0.0 },
        );
        let a24 = TwoFourMatrix::compress(&a).unwrap();
        let b = DenseMatrix::from_fn(32, 8, |r, c| ((r + 2 * c) % 3) as f32);
        let mut c = DenseMatrix::zeros(16, 8);
        e.sparse_mma(frag, &a24, &b, &mut c);
        assert_eq!(c, gemm::matmul(&a, &b));
        assert_eq!(e.counters.sparse_mma_count, 1);
        // Sparse fragment executes the same FLOPs as the dense m16n8k16.
        assert_eq!(
            e.counters.tc_executed_flops,
            FragmentShape::dense_fp16().executed_flops()
        );
    }

    #[test]
    fn fork_join_merges_counters() {
        let mut main = Engine::new(GpuConfig::a100(), Precision::Fp16);
        main.ffma(10);
        let mut w1 = main.fork();
        let mut w2 = main.fork();
        assert_eq!(w1.counters.ffma_count, 0);
        w1.ffma(5);
        w2.read_global(100, 0.5);
        main.join(&w1);
        main.join(&w2);
        assert_eq!(main.counters.ffma_count, 15);
        assert_eq!(main.counters.global_read_bytes, 100);
        assert_eq!(main.counters.l2_hit_bytes, 50);
    }

    #[test]
    fn memory_accounting() {
        let mut e = Engine::new(GpuConfig::a100(), Precision::Fp16);
        e.read_global(1000, 0.25);
        e.write_global(500);
        e.smem_write(200);
        e.smem_read(300);
        e.launch();
        assert_eq!(e.counters.global_bytes(), 1500);
        assert_eq!(e.counters.l2_hit_bytes, 250);
        assert_eq!(e.counters.shared_bytes(), 500);
        assert_eq!(e.counters.kernel_launches, 1);
        let t = e.timing();
        assert!(t.total > 0.0);
    }

    #[test]
    fn timing_uses_precision() {
        let mut fp16 = Engine::new(GpuConfig::a100(), Precision::Fp16);
        let mut fp64 = Engine::new(GpuConfig::a100(), Precision::Fp64);
        fp16.counters.tc_executed_flops = 1_000_000_000;
        fp64.counters.tc_executed_flops = 1_000_000_000;
        // FP64 tensor is 16× slower at peak; the achieved derates (0.70
        // FP64 vs 0.30 FP16) compress that to 16 × 0.30/0.70 ≈ 6.86.
        let cfg = GpuConfig::a100();
        let expect = 16.0 * cfg.eff_tc_half / cfg.eff_tc_fp64;
        let ratio = fp64.timing().t_tensor / fp16.timing().t_tensor;
        assert!(
            (ratio - expect).abs() < 0.1,
            "ratio {ratio} expect {expect}"
        );
    }
}
