//! The analytic timing model — Equations 6–8 of the paper.
//!
//! ```text
//! T        = max(T_compute, T_memory)                          (Eq. 6)
//! T_compute = N_MMA × CPI_tcu / (f · N_tcu)                    (Eq. 7)
//! T_memory  = max(data_R/bw_G + data_W/bw_G,
//!                 data_transW/bw_S + data_transR/bw_S)         (Eq. 8)
//! ```
//!
//! The same model serves two purposes, exactly as in the paper: (a) the
//! layout explorer evaluates candidate `(r1, r2)` configurations with it
//! (§3.3), and (b) the benchmark harness converts counted hardware
//! activity into kernel time and GStencil/s. Equation 7 is evaluated here
//! through executed FLOPs (`N_MMA × CPI_tcu / (f·N_tcu)` ≡
//! `executed_flops / peak_flops`, since `CPI` is itself derived from peak
//! throughput — see [`crate::config::GpuConfig::cpi_tcu`]); tests pin the
//! equivalence.

use crate::config::GpuConfig;
use crate::counters::Counters;
use sparstencil_mat::half::Precision;

/// Kernel-time decomposition produced by the analytic model.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct TimingBreakdown {
    /// Tensor-core compute time, seconds (Eq. 7 term).
    pub t_tensor: f64,
    /// CUDA-core (FFMA) compute time, seconds.
    pub t_ffma: f64,
    /// Global-memory term of Eq. 8, seconds.
    pub t_global: f64,
    /// Shared-memory term of Eq. 8, seconds.
    pub t_shared: f64,
    /// L2 service time (traffic / L2 bandwidth), seconds.
    pub t_l2: f64,
    /// Kernel launch overheads, seconds.
    pub t_launch: f64,
    /// Total modelled time: `max(compute, memory) + launch` (Eq. 6).
    pub total: f64,
}

impl TimingBreakdown {
    /// Compute-side time: tensor + scalar pipelines (they share issue
    /// slots in our kernels — the generated kernels use one or the other).
    pub fn t_compute(&self) -> f64 {
        self.t_tensor + self.t_ffma
    }

    /// Memory-side time (max over hierarchy levels, Eq. 8 extended with
    /// the L2 level).
    pub fn t_memory(&self) -> f64 {
        self.t_global.max(self.t_shared).max(self.t_l2)
    }

    /// `true` when the kernel is memory-bound under the model.
    pub fn memory_bound(&self) -> bool {
        self.t_memory() >= self.t_compute()
    }
}

/// Evaluate Equations 6–8 over exact activity counters.
///
/// The global term uses DRAM traffic (L2 hits are served on-chip and do
/// not consume HBM bandwidth); all global requests additionally pay the
/// L2 service term, which can become the binding level for hit-heavy
/// gather patterns.
pub fn kernel_time(
    config: &GpuConfig,
    counters: &Counters,
    precision: Precision,
) -> TimingBreakdown {
    let t_tensor = counters.tc_executed_flops as f64 / config.effective_tc_flops(precision);
    // One FFMA = 2 FLOPs.
    let t_ffma = (counters.ffma_count as f64 * 2.0) / config.effective_ffma_flops(precision);
    let t_global = counters.dram_bytes() as f64 / config.effective_global_bw();
    let t_shared = counters.shared_bytes() as f64 / config.effective_shared_bw();
    let t_l2 = counters.global_bytes() as f64 / config.effective_l2_bw();
    let t_launch = counters.kernel_launches as f64 * config.launch_overhead_s;
    let compute = t_tensor + t_ffma;
    let memory = t_global.max(t_shared).max(t_l2);
    TimingBreakdown {
        t_tensor,
        t_ffma,
        t_global,
        t_shared,
        t_l2,
        t_launch,
        total: compute.max(memory) + t_launch,
    }
}

/// GStencil/s (Equation 12): `iters × Π Nᵢ / (t × 10⁹)` — stencil points
/// updated per nanosecond.
pub fn gstencils_per_sec(points_per_iter: u64, iters: u64, seconds: f64) -> f64 {
    (iters as f64 * points_per_iter as f64) / (seconds * 1e9)
}

/// GFlop/s over useful stencil arithmetic (Table 3's metric): each stencil
/// point of a `p`-point kernel costs `2p` FLOPs (multiply + add).
pub fn gflops_per_sec(points_per_iter: u64, kernel_points: u64, iters: u64, seconds: f64) -> f64 {
    (iters as f64 * points_per_iter as f64 * kernel_points as f64 * 2.0) / (seconds * 1e9)
}

/// The six Figure-11 hardware-utilization metrics, derived from counters
/// and modelled time.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct UtilizationReport {
    /// Fraction of the kernel during which compute pipes are busy.
    pub sm_utilization: f64,
    /// Achieved occupancy (resident warps / max warps).
    pub occupancy: f64,
    /// L1/TEX (shared-memory) throughput vs peak.
    pub l1_throughput: f64,
    /// Combined memory throughput vs peak (max over levels).
    pub mem_throughput: f64,
    /// DRAM throughput vs peak.
    pub dram_throughput: f64,
    /// L2 throughput vs peak.
    pub l2_throughput: f64,
}

/// Compute the utilization report for a kernel with the given achieved
/// occupancy over modelled time `timing`.
pub fn utilization(
    config: &GpuConfig,
    counters: &Counters,
    timing: &TimingBreakdown,
    occupancy: f64,
) -> UtilizationReport {
    let t = timing.total.max(1e-30);
    let l1 = (counters.shared_bytes() as f64 / t) / config.shared_bw;
    let dram = (counters.dram_bytes() as f64 / t) / config.global_bw;
    let l2 = ((counters.l2_hit_bytes + counters.global_write_bytes + counters.dram_read_bytes())
        as f64
        / t)
        / config.l2_bw;
    UtilizationReport {
        sm_utilization: (timing.t_compute() / t).min(1.0),
        occupancy: occupancy.clamp(0.0, 1.0),
        l1_throughput: l1.min(1.0),
        mem_throughput: l1.max(dram).min(1.0),
        dram_throughput: dram.min(1.0),
        l2_throughput: l2.min(1.0),
    }
}

/// Kernel launch geometry, used for the occupancy model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct LaunchConfig {
    /// Number of thread blocks launched.
    pub blocks: usize,
    /// Threads per block.
    pub threads_per_block: usize,
    /// Shared memory per block in bytes (double-buffer staging included).
    pub shared_bytes_per_block: usize,
}

impl LaunchConfig {
    /// Achieved occupancy: resident warps per SM over the maximum,
    /// limited by warp slots, shared-memory capacity and the block supply
    /// (a grid smaller than the GPU cannot fill it).
    pub fn occupancy(&self, config: &GpuConfig) -> f64 {
        if self.threads_per_block == 0 || self.blocks == 0 {
            return 0.0;
        }
        let warps_per_block = self.threads_per_block.div_ceil(32);
        let by_warps = config.max_warps_per_sm / warps_per_block.max(1);
        let by_smem = config
            .shared_per_sm
            .checked_div(self.shared_bytes_per_block)
            .unwrap_or(usize::MAX);
        let blocks_per_sm = by_warps.min(by_smem).min(32);
        if blocks_per_sm == 0 {
            return 0.0;
        }
        // Block supply limit: with fewer blocks than SM slots, SMs idle.
        let supply = self.blocks as f64 / config.num_sms as f64;
        let resident_blocks = (blocks_per_sm as f64).min(supply);
        (resident_blocks * warps_per_block as f64 / config.max_warps_per_sm as f64).min(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::FragmentShape;

    fn cfg() -> GpuConfig {
        GpuConfig::a100()
    }

    #[test]
    fn eq7_equivalence_flops_vs_cpi() {
        // T_compute computed from executed FLOPs must equal
        // N_MMA × CPI / (f × N_tcu).
        let config = cfg();
        let frag = FragmentShape::sparse_fp16();
        let n_mma = 1000u64;
        let mut c = Counters::new();
        c.sparse_mma_count = n_mma;
        c.tc_executed_flops = n_mma * frag.executed_flops();
        let t = kernel_time(&config, &c, Precision::Fp16);
        let cpi = config.cpi_tcu(frag, Precision::Fp16);
        // The CPI formulation reaches peak; timing applies the achieved
        // derate on top.
        let expect =
            n_mma as f64 * cpi / (config.clock_hz * config.n_tcu() as f64) / config.eff_tc_half;
        assert!(
            (t.t_tensor - expect).abs() / expect < 1e-12,
            "flops path {} vs cpi path {expect}",
            t.t_tensor
        );
    }

    #[test]
    fn memory_bound_detection() {
        let config = cfg();
        let mut c = Counters::new();
        c.global_read_bytes = 10_000_000_000; // 10 GB at 1555 GB/s ≈ 6.4 ms
        c.tc_executed_flops = 1_000_000; // trivially small compute
        let t = kernel_time(&config, &c, Precision::Fp16);
        assert!(t.memory_bound());
        assert!((t.total - t.t_global).abs() < 1e-9);
    }

    #[test]
    fn compute_bound_detection() {
        let config = cfg();
        let mut c = Counters::new();
        c.tc_executed_flops = 312_000_000_000; // 1 ms of peak FP16 tensor work
        c.global_read_bytes = 1000;
        let t = kernel_time(&config, &c, Precision::Fp16);
        assert!(!t.memory_bound());
        // Achieved rate is peak × eff_tc_half.
        let expect = 1e-3 / config.eff_tc_half;
        assert!((t.total - expect).abs() < 1e-6, "total {}", t.total);
    }

    #[test]
    fn launch_overhead_added() {
        let config = cfg();
        let mut c = Counters::new();
        c.kernel_launches = 100;
        let t = kernel_time(&config, &c, Precision::Fp16);
        assert!((t.t_launch - 100.0 * config.launch_overhead_s).abs() < 1e-12);
        assert_eq!(t.total, t.t_launch);
    }

    #[test]
    fn gstencil_metric() {
        // 1e9 points, 10 iterations, 1 second → 10 GStencil/s.
        assert!((gstencils_per_sec(1_000_000_000, 10, 1.0) - 10.0).abs() < 1e-12);
    }

    #[test]
    fn gflops_metric() {
        // 1e9 points × 49-point kernel × 2 flops, 1 iter, 1 s → 98 GFlop/s.
        assert!((gflops_per_sec(1_000_000_000, 49, 1, 1.0) - 98.0).abs() < 1e-9);
    }

    #[test]
    fn occupancy_limits() {
        let config = cfg();
        // 256 threads = 8 warps; warp-limited: 64/8 = 8 blocks/SM → full.
        let full = LaunchConfig {
            blocks: 100_000,
            threads_per_block: 256,
            shared_bytes_per_block: 0,
        };
        assert!((full.occupancy(&config) - 1.0).abs() < 1e-12);

        // Shared-memory-limited: 64 KiB per block → 2 blocks/SM → 16/64.
        let smem = LaunchConfig {
            blocks: 100_000,
            threads_per_block: 256,
            shared_bytes_per_block: 64 * 1024,
        };
        assert!((smem.occupancy(&config) - 0.25).abs() < 1e-12);

        // Supply-limited: 54 blocks on 108 SMs → half the SMs idle.
        let supply = LaunchConfig {
            blocks: 54,
            threads_per_block: 256,
            shared_bytes_per_block: 0,
        };
        assert!((supply.occupancy(&config) - 54.0 / 108.0 * 8.0 / 64.0).abs() < 1e-12);

        // Degenerate.
        let zero = LaunchConfig {
            blocks: 0,
            threads_per_block: 0,
            shared_bytes_per_block: 0,
        };
        assert_eq!(zero.occupancy(&config), 0.0);
    }

    #[test]
    fn utilization_report_bounds() {
        let config = cfg();
        let mut c = Counters::new();
        c.tc_executed_flops = 1_000_000_000;
        c.global_read_bytes = 1_000_000;
        c.shared_read_bytes = 4_000_000;
        c.l2_hit_bytes = 500_000;
        let t = kernel_time(&config, &c, Precision::Fp16);
        let u = utilization(&config, &c, &t, 0.97);
        for v in [
            u.sm_utilization,
            u.occupancy,
            u.l1_throughput,
            u.mem_throughput,
            u.dram_throughput,
            u.l2_throughput,
        ] {
            assert!((0.0..=1.0).contains(&v), "metric out of range: {v}");
        }
        assert!(u.sm_utilization > 0.9, "compute-bound kernel: SM busy");
    }
}
