//! Hardware activity counters.
//!
//! The engine accumulates exact op and byte counts while executing a
//! kernel plan functionally; the analytic model (Equations 6–8) converts
//! them to time, and [`crate::model::UtilizationReport`] derives the six
//! Figure-11 metrics. Counting is exact — no sampling — which is what
//! makes the "analytic model equals counted ops" cross-check tests
//! meaningful.

/// Exact counts of simulated hardware activity.
#[derive(Debug, Clone, Copy, Default, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Counters {
    /// Dense fragment MMA operations issued.
    pub dense_mma_count: u64,
    /// Sparse (2:4) fragment MMA operations issued.
    pub sparse_mma_count: u64,
    /// FLOPs actually executed on tensor cores (dense-equivalent; sparse
    /// fragments contribute their executed, not logical, FLOPs).
    pub tc_executed_flops: u64,
    /// Scalar fused multiply-add operations on CUDA cores.
    pub ffma_count: u64,
    /// Bytes read from global memory (including those served by L2).
    pub global_read_bytes: u64,
    /// Bytes written to global memory.
    pub global_write_bytes: u64,
    /// Subset of `global_read_bytes` served by the L2 cache.
    pub l2_hit_bytes: u64,
    /// Bytes read from shared memory (the `data_transR` of Equation 8).
    pub shared_read_bytes: u64,
    /// Bytes written to shared memory (the `data_transW` of Equation 8).
    pub shared_write_bytes: u64,
    /// Kernel launches (each pays the host submission overhead).
    pub kernel_launches: u64,
}

impl Counters {
    /// Fresh zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total fragment MMA operations (`N_MMA` of Equation 9).
    pub fn n_mma(&self) -> u64 {
        self.dense_mma_count + self.sparse_mma_count
    }

    /// Total global-memory traffic in bytes (`data_R + data_W`).
    pub fn global_bytes(&self) -> u64 {
        self.global_read_bytes + self.global_write_bytes
    }

    /// Total shared-memory traffic in bytes
    /// (`data_transR + data_transW`).
    pub fn shared_bytes(&self) -> u64 {
        self.shared_read_bytes + self.shared_write_bytes
    }

    /// Global read bytes that had to come from DRAM (missed L2).
    pub fn dram_read_bytes(&self) -> u64 {
        self.global_read_bytes.saturating_sub(self.l2_hit_bytes)
    }

    /// Total DRAM traffic: misses plus write-through traffic.
    pub fn dram_bytes(&self) -> u64 {
        self.dram_read_bytes() + self.global_write_bytes
    }

    /// Element-wise accumulation (for merging per-iteration counters).
    pub fn merge(&mut self, other: &Counters) {
        self.dense_mma_count += other.dense_mma_count;
        self.sparse_mma_count += other.sparse_mma_count;
        self.tc_executed_flops += other.tc_executed_flops;
        self.ffma_count += other.ffma_count;
        self.global_read_bytes += other.global_read_bytes;
        self.global_write_bytes += other.global_write_bytes;
        self.l2_hit_bytes += other.l2_hit_bytes;
        self.shared_read_bytes += other.shared_read_bytes;
        self.shared_write_bytes += other.shared_write_bytes;
        self.kernel_launches += other.kernel_launches;
    }

    /// Scale every count by an integer factor (extrapolating one measured
    /// iteration to a full run).
    pub fn scaled(&self, factor: u64) -> Counters {
        Counters {
            dense_mma_count: self.dense_mma_count * factor,
            sparse_mma_count: self.sparse_mma_count * factor,
            tc_executed_flops: self.tc_executed_flops * factor,
            ffma_count: self.ffma_count * factor,
            global_read_bytes: self.global_read_bytes * factor,
            global_write_bytes: self.global_write_bytes * factor,
            l2_hit_bytes: self.l2_hit_bytes * factor,
            shared_read_bytes: self.shared_read_bytes * factor,
            shared_write_bytes: self.shared_write_bytes * factor,
            kernel_launches: self.kernel_launches * factor,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_accumulates() {
        let mut a = Counters::new();
        a.dense_mma_count = 3;
        a.global_read_bytes = 100;
        let mut b = Counters::new();
        b.dense_mma_count = 2;
        b.sparse_mma_count = 7;
        b.global_write_bytes = 50;
        a.merge(&b);
        assert_eq!(a.dense_mma_count, 5);
        assert_eq!(a.n_mma(), 12);
        assert_eq!(a.global_bytes(), 150);
    }

    #[test]
    fn dram_accounting_saturates() {
        let mut c = Counters::new();
        c.global_read_bytes = 100;
        c.l2_hit_bytes = 30;
        c.global_write_bytes = 10;
        assert_eq!(c.dram_read_bytes(), 70);
        assert_eq!(c.dram_bytes(), 80);
        c.l2_hit_bytes = 1000; // over-attributed hits must not underflow
        assert_eq!(c.dram_read_bytes(), 0);
    }

    #[test]
    fn scaled_multiplies_everything() {
        let mut c = Counters::new();
        c.sparse_mma_count = 4;
        c.shared_read_bytes = 8;
        c.kernel_launches = 1;
        let s = c.scaled(10);
        assert_eq!(s.sparse_mma_count, 40);
        assert_eq!(s.shared_read_bytes, 80);
        assert_eq!(s.kernel_launches, 10);
        assert_eq!(c.sparse_mma_count, 4, "original untouched");
    }
}
