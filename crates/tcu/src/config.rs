//! Hardware configuration of the simulated GPU.
//!
//! The defaults model the NVIDIA A100-SXM4-80GB the paper evaluates on
//! (§4.1: 108 SMs, 4 sparse tensor cores per SM, PCIe Gen4 host link).
//! Throughput and bandwidth constants follow the A100 datasheet
//! \[NVIDIA 2020\]:
//!
//! | quantity | value |
//! |---|---|
//! | SMs × TCUs/SM | 108 × 4 |
//! | boost clock | 1.41 GHz |
//! | FP16 dense tensor | 312 TFLOP/s (sparse 624) |
//! | TF32 dense tensor | 156 TFLOP/s (sparse 312) |
//! | FP64 tensor | 19.5 TFLOP/s (no sparsity) |
//! | FP32 CUDA FFMA | 19.5 TFLOP/s |
//! | FP64 CUDA FFMA | 9.7 TFLOP/s |
//! | HBM2e bandwidth | 1555 GB/s |
//! | aggregate shared-memory bandwidth | ≈19.5 TB/s (128 B/cycle/SM) |
//! | L2 bandwidth | ≈4.7 TB/s |
//! | shared memory per SM | 164 KiB usable |
//! | max warps per SM | 64 |
//!
//! All quantities live here so experiments can swap in other GPUs (the
//! Figure 9 fragment study uses the same chip with different fragment
//! geometries).

use sparstencil_mat::half::Precision;

/// Geometry of one tensor-core fragment operation `m × n × k`
/// (`D[m×n] += A[m×k] × B[k×n]`); for sparse fragments `k` is the
/// *logical* (uncompressed) depth, twice the stored depth.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub struct FragmentShape {
    /// Rows of `A`/`D`.
    pub m: usize,
    /// Columns of `B`/`D`.
    pub n: usize,
    /// Depth (logical, i.e. uncompressed, for sparse fragments).
    pub k: usize,
    /// `true` for 2:4 sparse fragments (`mma.sp`).
    pub sparse: bool,
}

impl FragmentShape {
    /// Ampere dense FP16 fragment `m16n8k16`.
    pub const fn dense_fp16() -> Self {
        Self {
            m: 16,
            n: 8,
            k: 16,
            sparse: false,
        }
    }
    /// Ampere sparse FP16 fragment `m16n8k32` (stored depth 16).
    pub const fn sparse_fp16() -> Self {
        Self {
            m: 16,
            n: 8,
            k: 32,
            sparse: true,
        }
    }
    /// The `16×16×8` fragment class referenced in §2.1 (dense).
    pub const fn m16n16k8() -> Self {
        Self {
            m: 16,
            n: 16,
            k: 8,
            sparse: false,
        }
    }
    /// The `16×32×8` fragment class referenced in §2.1 (dense).
    pub const fn m16n32k8() -> Self {
        Self {
            m: 16,
            n: 32,
            k: 8,
            sparse: false,
        }
    }
    /// Sparse variant of the `16×16` class (`m16n16k16` logical).
    pub const fn sparse_m16n16k16() -> Self {
        Self {
            m: 16,
            n: 16,
            k: 16,
            sparse: true,
        }
    }
    /// Ampere dense FP64 tensor fragment `m8n8k4`.
    pub const fn dense_fp64() -> Self {
        Self {
            m: 8,
            n: 8,
            k: 4,
            sparse: false,
        }
    }
    /// Hypothetical FP64 sparse fragment for the §4.7 projection
    /// (`m8n8k8` logical, stored depth 4 — the FP64 analogue of the
    /// FP16 `m16n8k32`/`m16n8k16` relationship).
    pub const fn sparse_fp64_projected() -> Self {
        Self {
            m: 8,
            n: 8,
            k: 8,
            sparse: true,
        }
    }

    /// Floating-point operations *executed* by one fragment op
    /// (multiply+add each count one). Sparse fragments skip half the
    /// logical depth, so they execute the same FLOPs as a dense fragment
    /// of depth `k/2` while covering twice the columns.
    pub fn executed_flops(&self) -> u64 {
        let depth = if self.sparse { self.k / 2 } else { self.k };
        2 * (self.m * self.n * depth) as u64
    }

    /// Logical FLOPs covered (counting skipped zeros), the basis of the
    /// "sparse TCUs deliver 2× dense" accounting.
    pub fn logical_flops(&self) -> u64 {
        2 * (self.m * self.n * self.k) as u64
    }

    /// Stored depth of the `A` operand (`k/2` for sparse).
    pub fn stored_k(&self) -> usize {
        if self.sparse {
            self.k / 2
        } else {
            self.k
        }
    }

    /// Short display form, e.g. `m16n8k32.sp`.
    pub fn label(&self) -> String {
        format!(
            "m{}n{}k{}{}",
            self.m,
            self.n,
            self.k,
            if self.sparse { ".sp" } else { "" }
        )
    }
}

/// Simulated GPU hardware parameters.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct GpuConfig {
    /// Marketing name, for report headers.
    pub name: String,
    /// Number of streaming multiprocessors.
    pub num_sms: usize,
    /// Tensor cores per SM.
    pub tcus_per_sm: usize,
    /// Core clock in Hz.
    pub clock_hz: f64,
    /// Dense tensor-core throughput in FLOP/s for FP16 operands.
    pub tc_fp16_flops: f64,
    /// Dense tensor-core throughput in FLOP/s for TF32 operands.
    pub tc_tf32_flops: f64,
    /// Tensor-core throughput in FLOP/s for FP64 operands (no sparsity).
    pub tc_fp64_flops: f64,
    /// CUDA-core FFMA throughput in FLOP/s for FP32.
    pub cuda_fp32_flops: f64,
    /// CUDA-core FFMA throughput in FLOP/s for FP64.
    pub cuda_fp64_flops: f64,
    /// CUDA-core FFMA throughput in FLOP/s for FP16 (vectorized half2).
    pub cuda_fp16_flops: f64,
    /// Global (HBM) bandwidth, bytes/s.
    pub global_bw: f64,
    /// Aggregate shared-memory bandwidth, bytes/s.
    pub shared_bw: f64,
    /// L2 cache bandwidth, bytes/s.
    pub l2_bw: f64,
    /// Usable shared memory per SM, bytes.
    pub shared_per_sm: usize,
    /// Maximum resident warps per SM.
    pub max_warps_per_sm: usize,
    /// Kernel launch overhead, seconds (PCIe Gen4 submission latency).
    pub launch_overhead_s: f64,

    // ---- Achieved-vs-peak derates (roofline calibration) ----
    // Peak datasheet numbers are never sustained by real kernels; these
    // factors calibrate the model to achievable rates. They are global
    // (every mapping — SparStencil and baselines alike — pays the same
    // derate), so relative comparisons are driven purely by counted work.
    /// Achieved fraction of FP16/BF16/TF32 tensor throughput. Small-`n`
    /// fragment GEMMs with operand staging sustain ~30% of peak.
    pub eff_tc_half: f64,
    /// Achieved fraction of FP64 tensor throughput (DMMA pipelines are
    /// close to CUDA-core style and sustain a much higher fraction).
    pub eff_tc_fp64: f64,
    /// Achieved fraction of CUDA-core FFMA peak for stencil loops
    /// (register pressure, address arithmetic, load-use stalls).
    pub eff_ffma: f64,
    /// Achieved fraction of HBM bandwidth (typical stream efficiency).
    pub eff_global: f64,
    /// Achieved fraction of aggregate shared/L1 bandwidth (bank
    /// conflicts, transaction granularity).
    pub eff_shared: f64,
    /// Achieved fraction of L2 bandwidth (sector granularity, slice
    /// imbalance).
    pub eff_l2: f64,
    /// Hypothetical FP64 2:4 sparsity support (§4.7's projected future
    /// hardware; `false` on every shipping part).
    pub fp64_sparse: bool,
}

impl GpuConfig {
    /// The paper's evaluation platform: NVIDIA A100 (108 SMs, 4 sparse
    /// TCUs each).
    pub fn a100() -> Self {
        Self {
            name: "NVIDIA A100 (simulated)".to_string(),
            num_sms: 108,
            tcus_per_sm: 4,
            clock_hz: 1.41e9,
            tc_fp16_flops: 312e12,
            tc_tf32_flops: 156e12,
            tc_fp64_flops: 19.5e12,
            cuda_fp32_flops: 19.5e12,
            cuda_fp64_flops: 9.7e12,
            cuda_fp16_flops: 78e12,
            global_bw: 1555e9,
            shared_bw: 19.5e12,
            l2_bw: 4.7e12,
            shared_per_sm: 164 * 1024,
            max_warps_per_sm: 64,
            launch_overhead_s: 3e-6,
            eff_tc_half: 0.30,
            eff_tc_fp64: 0.70,
            eff_ffma: 0.30,
            eff_global: 0.85,
            eff_shared: 0.60,
            eff_l2: 0.50,
            fp64_sparse: false,
        }
    }

    /// Achievable tensor-core FLOP/s (peak × derate) for timing.
    pub fn effective_tc_flops(&self, precision: Precision) -> f64 {
        let eff = match precision {
            Precision::Fp64 => self.eff_tc_fp64,
            _ => self.eff_tc_half,
        };
        self.tc_flops(precision) * eff
    }

    /// Achievable CUDA-core FFMA FLOP/s.
    pub fn effective_ffma_flops(&self, precision: Precision) -> f64 {
        self.ffma_flops(precision) * self.eff_ffma
    }

    /// Achievable HBM bandwidth, bytes/s.
    pub fn effective_global_bw(&self) -> f64 {
        self.global_bw * self.eff_global
    }

    /// Achievable shared/L1 bandwidth, bytes/s.
    pub fn effective_shared_bw(&self) -> f64 {
        self.shared_bw * self.eff_shared
    }

    /// Achievable L2 bandwidth, bytes/s.
    pub fn effective_l2_bw(&self) -> f64 {
        self.l2_bw * self.eff_l2
    }

    /// A hypothetical next-generation part for the §4.7 projection:
    /// "Future sparse TCUs with FP64 support will further amplify
    /// SparStencil's benefits." Hopper-class scaling (≈2.1× tensor
    /// throughput, 1.9× HBM, 1.5× L2 bandwidth, 132 SMs) **plus** the
    /// hypothetical capability the paper anticipates — 2:4 sparsity at
    /// FP64 (`supports_sparse` returns true for every precision because
    /// `fp64_sparse` is set).
    pub fn future_fp64_sparse() -> Self {
        Self {
            name: "Future GPU (FP64 sparse TCU, projected)".to_string(),
            num_sms: 132,
            tcus_per_sm: 4,
            clock_hz: 1.8e9,
            tc_fp16_flops: 660e12,
            tc_tf32_flops: 330e12,
            tc_fp64_flops: 60e12,
            cuda_fp32_flops: 60e12,
            cuda_fp64_flops: 30e12,
            cuda_fp16_flops: 120e12,
            global_bw: 3000e9,
            shared_bw: 33e12,
            l2_bw: 7e12,
            shared_per_sm: 228 * 1024,
            max_warps_per_sm: 64,
            launch_overhead_s: 3e-6,
            eff_tc_half: 0.30,
            eff_tc_fp64: 0.70,
            eff_ffma: 0.30,
            eff_global: 0.85,
            eff_shared: 0.60,
            eff_l2: 0.50,
            fp64_sparse: true,
        }
    }

    /// Dense tensor-core FLOP/s for the given operand precision.
    /// BF16 matches FP16 on Ampere; FP32 operands run as TF32.
    pub fn tc_flops(&self, precision: Precision) -> f64 {
        match precision {
            Precision::Fp16 | Precision::Bf16 => self.tc_fp16_flops,
            Precision::Tf32 | Precision::Fp32 => self.tc_tf32_flops,
            Precision::Fp64 => self.tc_fp64_flops,
        }
    }

    /// `true` if the hardware accelerates 2:4 sparsity at this precision
    /// (A100: FP16/BF16/TF32 only — §4.7 notes the lack of FP64 sparse
    /// support; [`GpuConfig::future_fp64_sparse`] lifts the restriction).
    pub fn supports_sparse(&self, precision: Precision) -> bool {
        self.fp64_sparse || !matches!(precision, Precision::Fp64)
    }

    /// CUDA-core FFMA FLOP/s for the given precision.
    pub fn ffma_flops(&self, precision: Precision) -> f64 {
        match precision {
            Precision::Fp16 | Precision::Bf16 => self.cuda_fp16_flops,
            Precision::Tf32 | Precision::Fp32 => self.cuda_fp32_flops,
            Precision::Fp64 => self.cuda_fp64_flops,
        }
    }

    /// Cycles one fragment op occupies a single TCU (`CPI_tcu` of
    /// Equation 7), derived from the executed FLOPs and the per-TCU
    /// per-cycle throughput.
    pub fn cpi_tcu(&self, frag: FragmentShape, precision: Precision) -> f64 {
        let per_tcu_per_cycle = self.tc_flops(precision)
            / (self.num_sms as f64 * self.tcus_per_sm as f64 * self.clock_hz);
        frag.executed_flops() as f64 / per_tcu_per_cycle
    }

    /// Total number of tensor cores (`N_tcu` of Equation 7).
    pub fn n_tcu(&self) -> usize {
        self.num_sms * self.tcus_per_sm
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fragment_flop_accounting() {
        let dense = FragmentShape::dense_fp16();
        assert_eq!(dense.executed_flops(), 2 * 16 * 8 * 16);
        assert_eq!(dense.logical_flops(), 2 * 16 * 8 * 16);
        assert_eq!(dense.stored_k(), 16);

        let sparse = FragmentShape::sparse_fp16();
        assert_eq!(sparse.executed_flops(), 2 * 16 * 8 * 16); // same as dense
        assert_eq!(sparse.logical_flops(), 2 * 16 * 8 * 32); // covers 2×
        assert_eq!(sparse.stored_k(), 16);
        assert_eq!(sparse.label(), "m16n8k32.sp");
    }

    #[test]
    fn a100_cpi_matches_datasheet() {
        // 312 TFLOP/s over 432 TCUs at 1.41 GHz = 512 FLOP/TCU/cycle;
        // one m16n8k16 executes 4096 FLOPs → 8 cycles.
        let cfg = GpuConfig::a100();
        let cpi = cfg.cpi_tcu(FragmentShape::dense_fp16(), Precision::Fp16);
        assert!((cpi - 8.0).abs() < 0.1, "cpi = {cpi}");
        // Sparse fragment: same executed FLOPs → same CPI, double coverage.
        let cpi_sp = cfg.cpi_tcu(FragmentShape::sparse_fp16(), Precision::Fp16);
        assert!((cpi_sp - 8.0).abs() < 0.1);
    }

    #[test]
    fn sparse_support_matrix() {
        let cfg = GpuConfig::a100();
        assert!(cfg.supports_sparse(Precision::Fp16));
        assert!(cfg.supports_sparse(Precision::Tf32));
        assert!(!cfg.supports_sparse(Precision::Fp64));
    }

    #[test]
    fn throughput_lookup() {
        let cfg = GpuConfig::a100();
        assert_eq!(cfg.tc_flops(Precision::Fp16), 312e12);
        assert_eq!(cfg.tc_flops(Precision::Bf16), 312e12);
        assert_eq!(cfg.tc_flops(Precision::Fp64), 19.5e12);
        assert_eq!(cfg.ffma_flops(Precision::Fp64), 9.7e12);
        assert_eq!(cfg.n_tcu(), 432);
    }

    #[test]
    fn fp64_fragment() {
        let f = FragmentShape::dense_fp64();
        assert_eq!(f.executed_flops(), 2 * 8 * 8 * 4);
        let cfg = GpuConfig::a100();
        // 19.5 TFLOP/s over 432 TCUs at 1.41 GHz = 32 FLOP/TCU/cycle;
        // m8n8k4 executes 512 FLOPs → 16 cycles.
        let cpi = cfg.cpi_tcu(f, Precision::Fp64);
        assert!((cpi - 16.0).abs() < 0.1, "cpi = {cpi}");
    }
}
