//! # sparstencil-tcu — a sparse Tensor Core simulator
//!
//! This environment has no GPU, and Rust has no mature sparse-tensor-core
//! bindings (the repro constraint called out for this reproduction), so
//! this crate implements the substrate the paper's system runs on: a
//! **functional + cycle-analytic simulator** of an A100-class GPU with
//! sparse tensor cores.
//!
//! Two strictly separated concerns:
//!
//! 1. **Functional execution** — [`fragment`] and [`sparse`] execute dense
//!    and 2:4-sparse fragment MMAs numerically (compressed operands +
//!    metadata, FP32/FP64 accumulation), so every kernel plan produces
//!    real numbers verifiable against scalar references.
//! 2. **Timing derivation** — [`engine::Engine`] counts every op and byte
//!    exactly; [`model`] converts counters to time via the paper's own
//!    analytic model (Equations 6–8) with datasheet constants
//!    ([`config::GpuConfig::a100`]), and derives the Figure-11 utilization
//!    metrics.
//!
//! Nothing in this crate knows about stencils; it is a general simulated
//! matrix accelerator consumed by the `sparstencil` core crate and by the
//! baseline implementations.

#![warn(missing_docs)]

pub mod config;
pub mod counters;
pub mod engine;
pub mod fragment;
pub mod model;
pub mod sparse;

pub use config::{FragmentShape, GpuConfig};
pub use counters::Counters;
pub use engine::Engine;
pub use model::{
    gflops_per_sec, gstencils_per_sec, kernel_time, utilization, LaunchConfig, TimingBreakdown,
    UtilizationReport,
};
pub use sparstencil_mat::half::Precision;
