//! Property-based tests for the TCU simulator: sparse fragment MMA must
//! equal masked dense MMA for arbitrary 2:4-compatible operands and
//! fragment geometries, tiling must be exact, and the timing model must
//! be monotone in work.

use proptest::prelude::*;
use sparstencil_mat::gemm;
use sparstencil_mat::half::Precision;
use sparstencil_mat::{DenseMatrix, TwoFourMatrix};
use sparstencil_tcu::fragment::{dense_fragment_mma, tiled_dense_matmul};
use sparstencil_tcu::model::kernel_time;
use sparstencil_tcu::sparse::sparse_fragment_mma;
use sparstencil_tcu::{Counters, FragmentShape, GpuConfig};

/// A random 2:4-compatible m×k matrix (k multiple of 4).
fn two_four(m: usize, groups: usize) -> impl Strategy<Value = DenseMatrix<f32>> {
    proptest::collection::vec((0usize..4, 0usize..4, -8i32..=8, -8i32..=8), m * groups).prop_map(
        move |cells| {
            let mut a = DenseMatrix::zeros(m, groups * 4);
            for (i, (p0, p1, v0, v1)) in cells.into_iter().enumerate() {
                let (r, g) = (i / groups, i % groups);
                if v0 != 0 {
                    a.set(r, g * 4 + p0, v0 as f32);
                }
                if v1 != 0 && p1 != p0 {
                    a.set(r, g * 4 + p1, v1 as f32);
                }
            }
            a
        },
    )
}

proptest! {
    #[test]
    fn sparse_mma_equals_masked_dense_any_fragment(
        a in two_four(16, 8),
        nsel in 0usize..3,
        seed in 0u64..50,
    ) {
        let n = [4usize, 8, 16][nsel];
        let frag = FragmentShape { m: 16, n, k: 32, sparse: true };
        let a24 = TwoFourMatrix::compress(&a).unwrap();
        let b = DenseMatrix::from_fn(32, n, |r, c| {
            (((r as u64 * 31 + c as u64 * 7 + seed) % 13) as f32) - 6.0
        });
        let mut c = DenseMatrix::zeros(16, n);
        sparse_fragment_mma(frag, &a24, &b, &mut c);
        prop_assert_eq!(c, gemm::matmul(&a, &b));
    }

    #[test]
    fn dense_fragment_equals_gemm(
        m in 1usize..20, n in 1usize..12, k in 1usize..24, seed in 0u64..50,
    ) {
        let frag = FragmentShape { m, n, k, sparse: false };
        let a = DenseMatrix::from_fn(m, k, |r, c| (((r * 7 + c * 3) as u64 + seed) % 9) as f32 - 4.0);
        let b = DenseMatrix::from_fn(k, n, |r, c| (((r * 5 + c * 11) as u64 + seed) % 7) as f32 - 3.0);
        let mut c = DenseMatrix::zeros(m, n);
        dense_fragment_mma(frag, &a, &b, &mut c);
        prop_assert_eq!(c, gemm::matmul(&a, &b));
    }

    #[test]
    fn tiled_matmul_exact_and_op_count_formula(
        m in 1usize..40, n in 1usize..24, k in 1usize..40, seed in 0u64..20,
    ) {
        let frag = FragmentShape::dense_fp16();
        let a = DenseMatrix::from_fn(m, k, |r, c| (((r * 3 + c) as u64 + seed) % 5) as f32 - 2.0);
        let b = DenseMatrix::from_fn(k, n, |r, c| (((r + c * 7) as u64 + seed) % 5) as f32 - 2.0);
        let (c, ops) = tiled_dense_matmul(frag, &a, &b);
        prop_assert_eq!(c, gemm::matmul(&a, &b));
        let expect = m.div_ceil(16) as u64 * k.div_ceil(16) as u64 * n.div_ceil(8) as u64;
        prop_assert_eq!(ops, expect);
    }

    #[test]
    fn timing_monotone_in_every_counter(
        flops in 1u64..1_000_000_000,
        bytes in 1u64..1_000_000_000,
        extra in 1u64..1_000_000_000,
    ) {
        let gpu = GpuConfig::a100();
        let mut base = Counters::new();
        base.tc_executed_flops = flops;
        base.global_read_bytes = bytes;
        let t0 = kernel_time(&gpu, &base, Precision::Fp16).total;
        // Growing any cost component never reduces total time.
        for grow in 0..4 {
            let mut c = base;
            match grow {
                0 => c.tc_executed_flops += extra,
                1 => c.global_read_bytes += extra,
                2 => c.shared_read_bytes += extra,
                _ => c.ffma_count += extra,
            }
            let t = kernel_time(&gpu, &c, Precision::Fp16).total;
            prop_assert!(t >= t0 - 1e-15, "component {grow} shrank time");
        }
    }

    #[test]
    fn counters_merge_is_addition(
        a in 0u64..1_000_000, b in 0u64..1_000_000, c in 0u64..1_000_000,
    ) {
        let mut x = Counters::new();
        x.dense_mma_count = a;
        x.global_read_bytes = b;
        let mut y = Counters::new();
        y.dense_mma_count = c;
        y.shared_write_bytes = b;
        let mut merged = x;
        merged.merge(&y);
        prop_assert_eq!(merged.dense_mma_count, a + c);
        prop_assert_eq!(merged.global_read_bytes, b);
        prop_assert_eq!(merged.shared_write_bytes, b);
        let scaled = merged.scaled(3);
        prop_assert_eq!(scaled.dense_mma_count, 3 * (a + c));
    }
}
