//! Cross-crate integration: the full SparStencil pipeline against the
//! scalar reference for every Table-2-class kernel, every execution mode,
//! and multi-iteration runs.

use sparstencil::layout::ExecMode;
use sparstencil::pipeline::Executor;
use sparstencil::plan::Options;
use sparstencil::prelude::{Grid, Precision, StencilKernel};
use sparstencil_mat::half::verify_tolerance;

fn verify(kernel: &StencilKernel, shape: [usize; 3], opts: &Options, iters: usize) {
    let exec = Executor::<f32>::new(kernel, shape, opts)
        .unwrap_or_else(|e| panic!("{}: compile failed: {e}", kernel.name()));
    let input = Grid::<f32>::smooth_random(kernel.dims(), shape);
    let err = exec.verify(&input, iters);
    let tol = verify_tolerance(opts.precision) * iters as f64;
    assert!(
        err <= tol,
        "{}: rel err {err:.3e} > tol {tol:.1e} (mode {:?})",
        kernel.name(),
        opts.mode
    );
}

#[test]
fn table2_kernels_sparse_mode() {
    for kernel in [
        StencilKernel::heat1d(),
        StencilKernel::onedim5p(),
        StencilKernel::heat2d(),
        StencilKernel::box2d9p(),
        StencilKernel::star2d13p(),
        StencilKernel::box2d49p(),
    ] {
        let shape = if kernel.dims() == 1 {
            [1, 1, 600]
        } else {
            [1, 52, 56]
        };
        verify(&kernel, shape, &Options::default(), 1);
    }
}

#[test]
fn table2_kernels_3d_sparse_mode() {
    for kernel in [StencilKernel::heat3d(), StencilKernel::box3d27p()] {
        verify(
            &kernel,
            [14, 24, 24],
            &Options {
                layout: Some((4, 4)),
                ..Options::default()
            },
            1,
        );
    }
}

#[test]
fn table2_kernels_dense_mode() {
    for kernel in [StencilKernel::heat2d(), StencilKernel::box2d49p()] {
        verify(
            &kernel,
            [1, 50, 50],
            &Options {
                mode: ExecMode::DenseTcu,
                layout: Some((4, 2)),
                ..Options::default()
            },
            1,
        );
    }
}

#[test]
fn fp64_dense_pipeline_tight_tolerance() {
    let kernel = StencilKernel::box2d9p();
    let shape = [1, 40, 44];
    let opts = Options {
        precision: Precision::Fp64,
        mode: ExecMode::DenseTcu,
        layout: Some((4, 4)),
        ..Options::default()
    };
    let exec = Executor::<f64>::new(&kernel, shape, &opts).unwrap();
    let input = Grid::<f64>::smooth_random(2, shape);
    let err = exec.verify(&input, 2);
    assert!(err < 1e-12, "fp64 err {err:.3e}");
}

#[test]
fn multi_iteration_stability() {
    verify(
        &StencilKernel::heat2d(),
        [1, 64, 64],
        &Options::default(),
        5,
    );
}

#[test]
fn temporal_fusion_matches_stepped_reference() {
    let kernel = StencilKernel::heat2d();
    let fused = kernel.temporal_fusion(3);
    // One fused application ≡ three plain steps (checked in the fused
    // kernel's interior) through the full pipeline.
    verify(
        &fused,
        [1, 64, 64],
        &Options {
            layout: Some((4, 4)),
            ..Options::default()
        },
        1,
    );
}

#[test]
fn tf32_precision_mode() {
    let kernel = StencilKernel::box2d9p();
    let shape = [1, 48, 48];
    let opts = Options {
        precision: Precision::Tf32,
        ..Options::default()
    };
    verify(&kernel, shape, &opts, 1);
}

#[test]
fn blossom_strategy_end_to_end() {
    let opts = Options {
        strategy: sparstencil::convert::Strategy::Blossom,
        layout: Some((4, 4)),
        ..Options::default()
    };
    verify(&StencilKernel::star2d13p(), [1, 52, 52], &opts, 1);
}

#[test]
fn non_divisible_grids_edge_tiles() {
    // Valid extents deliberately not divisible by (r1, r2): edge tiles
    // exercise the clamped gather and masked scatter paths.
    let kernel = StencilKernel::box2d9p();
    for shape in [[1, 37, 41], [1, 35, 53], [1, 43, 39]] {
        verify(
            &kernel,
            shape,
            &Options {
                layout: Some((4, 4)),
                ..Options::default()
            },
            1,
        );
    }
}

#[test]
fn one_point_kernel_degenerate() {
    let kernel = StencilKernel::new("identity", 2, [1, 1, 1], vec![1.0]);
    verify(
        &kernel,
        [1, 33, 33],
        &Options {
            layout: Some((4, 4)),
            ..Options::default()
        },
        1,
    );
}

#[test]
fn bf16_precision_mode() {
    let kernel = StencilKernel::box2d9p();
    let shape = [1, 44, 44];
    let opts = Options {
        precision: Precision::Bf16,
        layout: Some((4, 4)),
        ..Options::default()
    };
    verify(&kernel, shape, &opts, 1);
}

#[test]
fn projected_fp64_sparse_hardware_compiles_and_verifies() {
    // §4.7 projection: the hypothetical FP64-sparse part accepts
    // SparseTcu + Fp64, and the pipeline stays numerically exact.
    use sparstencil_tcu::GpuConfig;
    let kernel = StencilKernel::box2d9p();
    let shape = [1, 40, 44];
    let opts = Options {
        precision: Precision::Fp64,
        gpu: GpuConfig::future_fp64_sparse(),
        layout: Some((4, 2)),
        ..Options::default()
    };
    let exec = Executor::<f64>::new(&kernel, shape, &opts).unwrap();
    let input = Grid::<f64>::smooth_random(2, shape);
    let err = exec.verify(&input, 2);
    assert!(err < 1e-12, "fp64 sparse err {err:.3e}");
    // And on the A100 the same options are rejected.
    let a100_opts = Options {
        gpu: sparstencil_tcu::GpuConfig::a100(),
        ..opts
    };
    assert!(Executor::<f64>::new(&kernel, shape, &a100_opts).is_err());
}
