//! Supervised serving semantics: the [`SessionManager`] must gate
//! admissions with typed rejections, park budget-exhausted tenants
//! without losing a bit, auto-recover faulted tenants back to
//! bit-identity with solo twins, escalate repeat offenders to typed
//! evictions — and never disturb the innocent bystanders while doing
//! any of it.

use std::time::{Duration, Instant};

use sparstencil::grid::Grid;
use sparstencil::pipeline::Executor;
use sparstencil::plan::Options;
use sparstencil::session::SessionError;
use sparstencil::stencil::StencilKernel;
use sparstencil_serve::{
    EvictionReason, RejectReason, ServeError, ServeEvent, ServePolicy, SessionManager, TenantStatus,
};

fn executor(shape: [usize; 3]) -> Executor<f32> {
    Executor::<f32>::new(&StencilKernel::heat2d(), shape, &Options::default()).unwrap()
}

fn input(shape: [usize; 3], seed: usize) -> Grid<f32> {
    Grid::<f32>::from_fn_3d(2, shape, |z, y, x| {
        ((z * 11 + y * 5 + x * 3 + seed * 17) % 23) as f32 * 0.04
    })
}

/// Every live, healthy tenant must be bit-identical to a solo session
/// stepped its observed step count.
fn assert_solo_identity(
    exec: &Executor<f32>,
    mgr: &SessionManager<'_, f32>,
    tenants: &[(sparstencil_serve::TenantId, usize)],
) {
    for &(id, seed) in tenants {
        let steps = mgr.steps(id).expect("tenant is live");
        let mut solo = exec.session(&input(exec.plan().grid_shape, seed));
        solo.step_n(steps);
        assert_eq!(
            mgr.to_grid(id).expect("tenant is live"),
            solo.to_grid(),
            "tenant {id} (seed {seed}) at {steps} steps must equal its solo twin"
        );
    }
}

#[test]
fn admission_rejections_do_not_disturb_the_pool() {
    let shape = [1, 32, 32];
    let exec = executor(shape);
    let policy = ServePolicy {
        max_sessions: 3,
        ..ServePolicy::default()
    };
    let mut mgr = SessionManager::new(exec.plan(), policy);

    let ids: Vec<_> = (0..3)
        .map(|s| mgr.admit(&input(shape, s)).unwrap())
        .collect();
    for _ in 0..3 {
        mgr.step();
    }

    // Over capacity: typed rejection, nobody else affected.
    match mgr.admit(&input(shape, 9)) {
        Err(ServeError::Rejected(RejectReason::SessionCapacity { limit: 3, live: 3 })) => {}
        other => panic!("expected SessionCapacity, got {other:?}"),
    }
    // Invalid input: the session layer's typed error passes through.
    let mut nan = input(shape, 9);
    nan.set(0, 10, 10, f32::NAN);
    mgr.retire(ids[2]).unwrap();
    match mgr.admit(&nan) {
        Err(ServeError::Session(SessionError::NonFiniteInput { .. })) => {}
        other => panic!("expected NonFiniteInput, got {other:?}"),
    }
    assert_eq!(mgr.live_sessions(), 2);

    for _ in 0..2 {
        mgr.step();
    }
    assert_solo_identity(&exec, &mgr, &[(ids[0], 0), (ids[1], 1)]);
}

#[test]
fn step_budgets_park_and_release_bit_identically() {
    let shape = [1, 32, 32];
    let exec = executor(shape);
    let mut mgr = SessionManager::new(exec.plan(), ServePolicy::default());
    let a = mgr.admit(&input(shape, 0)).unwrap();
    let b = mgr.admit(&input(shape, 1)).unwrap();

    mgr.set_step_budget(a, Some(3)).unwrap();
    for _ in 0..6 {
        mgr.step();
    }
    assert_eq!(mgr.steps(a), Some(3), "tenant stops exactly at its budget");
    assert_eq!(mgr.steps(b), Some(6), "unbudgeted tenant keeps going");
    assert_eq!(mgr.status(a), Some(TenantStatus::AtBudget));
    assert_eq!(mgr.status(b), Some(TenantStatus::Running));

    // Raising the budget releases the tenant on the next round.
    mgr.set_step_budget(a, Some(5)).unwrap();
    mgr.step();
    assert_eq!(mgr.steps(a), Some(4));
    // Clearing it removes the gate entirely.
    mgr.set_step_budget(a, None).unwrap();
    for _ in 0..2 {
        mgr.step();
    }
    assert_eq!(mgr.steps(a), Some(6));
    assert_solo_identity(&exec, &mgr, &[(a, 0), (b, 1)]);
}

#[test]
fn faulted_tenant_auto_recovers_bit_identically() {
    let shape = [1, 32, 32];
    let exec = executor(shape);
    let policy = ServePolicy {
        checkpoint_every: 2,
        checkpoint_ring: 2,
        backoff_base: 1,
        backoff_cap: 2,
        ..ServePolicy::default()
    };
    let mut mgr = SessionManager::new(exec.plan(), policy);
    let a = mgr.admit(&input(shape, 0)).unwrap();
    let b = mgr.admit(&input(shape, 1)).unwrap();
    for _ in 0..5 {
        mgr.step();
    }
    mgr.drain_events();

    // Administrative quarantine is indistinguishable from an organic
    // fault to the supervisor.
    mgr.quarantine(a).unwrap();
    assert!(matches!(mgr.status(a), Some(TenantStatus::Faulted(_))));

    // The next round restores + replays the victim and parks it in
    // backoff; the bystander steps normally.
    let report = mgr.step();
    assert_eq!(report.recovered, 1);
    assert_eq!(report.evicted, 0);
    assert_eq!(report.active, 1);
    assert!(matches!(
        mgr.status(a),
        Some(TenantStatus::BackingOff { .. })
    ));
    assert_eq!(
        mgr.steps(a),
        Some(5),
        "recovery replays back to the pre-fault step count"
    );
    let events = mgr.drain_events();
    match events.as_slice() {
        [ServeEvent::Recovered {
            tenant,
            restored_to_step,
            replayed,
            attempt: 1,
            ..
        }] => {
            assert_eq!(*tenant, a);
            assert_eq!(restored_to_step + replayed, 5);
        }
        other => panic!("expected one Recovered event, got {other:?}"),
    }

    // The backoff expires on its own and the tenant rejoins; both
    // trajectories stay bit-identical to solo twins.
    for _ in 0..4 {
        mgr.step();
    }
    assert_eq!(mgr.status(a), Some(TenantStatus::Running));
    assert!(
        mgr.steps(a).unwrap() > 5,
        "tenant stepped again after backoff"
    );
    assert_solo_identity(&exec, &mgr, &[(a, 0), (b, 1)]);
}

#[test]
fn repeat_offender_is_evicted_with_a_typed_reason() {
    let shape = [1, 32, 32];
    let exec = executor(shape);
    let policy = ServePolicy {
        max_recoveries: 1,
        backoff_base: 1,
        backoff_cap: 1,
        heal_after: 1_000_000, // no decay inside this test
        ..ServePolicy::default()
    };
    let mut mgr = SessionManager::new(exec.plan(), policy);
    let a = mgr.admit(&input(shape, 0)).unwrap();
    let b = mgr.admit(&input(shape, 1)).unwrap();
    for _ in 0..3 {
        mgr.step();
    }

    // First fault: recovered (attempt 1 of 1).
    mgr.quarantine(a).unwrap();
    assert_eq!(mgr.step().recovered, 1);
    // Let the backoff expire, then fault again: budget exhausted.
    while matches!(mgr.status(a), Some(TenantStatus::BackingOff { .. })) {
        mgr.step();
    }
    mgr.quarantine(a).unwrap();
    let report = mgr.step();
    assert_eq!(report.evicted, 1);
    assert_eq!(mgr.live_sessions(), 1);
    match mgr.status(a) {
        Some(TenantStatus::Evicted(EvictionReason::RecoveryBudgetExhausted {
            attempts: 1,
            ..
        })) => {}
        other => panic!("expected RecoveryBudgetExhausted, got {other:?}"),
    }
    assert_eq!(mgr.steps(a), None, "evicted tenants release their slot");

    // The survivor is untouched by the whole ordeal.
    mgr.step();
    assert_solo_identity(&exec, &mgr, &[(b, 1)]);
}

#[test]
fn churn_remaps_slots_without_losing_identity() {
    let shape = [1, 32, 32];
    let exec = executor(shape);
    let mut mgr = SessionManager::new(exec.plan(), ServePolicy::default());
    let ids: Vec<_> = (0..4)
        .map(|s| mgr.admit(&input(shape, s)).unwrap())
        .collect();
    for _ in 0..3 {
        mgr.step();
    }

    // Retire a middle tenant: the tail tenant swaps into its slot and
    // the manager re-points the handle.
    let old_slot = mgr.slot_of(ids[1]).unwrap();
    mgr.retire(ids[1]).unwrap();
    assert_eq!(
        mgr.slot_of(ids[3]),
        Some(old_slot),
        "tail tenant moved down"
    );
    assert_eq!(mgr.tenant_at(old_slot), Some(ids[3]));

    let e = mgr.admit(&input(shape, 7)).unwrap();
    for _ in 0..2 {
        mgr.step();
    }
    assert_eq!(mgr.steps(e), Some(2));
    assert_solo_identity(
        &exec,
        &mgr,
        &[(ids[0], 0), (ids[2], 2), (ids[3], 3), (e, 7)],
    );
}

#[test]
fn run_until_fills_the_latency_histogram() {
    let shape = [1, 32, 32];
    let exec = executor(shape);
    let mut mgr = SessionManager::new(exec.plan(), ServePolicy::default());
    let a = mgr.admit(&input(shape, 0)).unwrap();
    let _b = mgr.admit(&input(shape, 1)).unwrap();

    let report = mgr.run_until(Instant::now() + Duration::from_millis(150));
    assert!(
        report.rounds >= 1,
        "a future deadline admits at least one round"
    );
    assert_eq!(report.evicted, 0);
    assert_eq!(mgr.steps(a), Some(report.rounds as usize));

    let hist = mgr.latency();
    assert_eq!(hist.count(), report.rounds, "one sample per stepped round");
    let p50 = hist.quantile(0.5);
    let p99 = hist.quantile(0.99);
    assert!(
        p50 > Duration::ZERO && p50 <= p99,
        "p50 {p50:?} / p99 {p99:?} must be ordered"
    );
    assert!(hist.min() <= p50 && p99 <= hist.max());

    mgr.reset_latency();
    assert!(mgr.latency().is_empty());

    // With every tenant parked at a budget (and no backoff pending),
    // run_until returns instead of spinning to the deadline.
    for id in mgr.tenants().collect::<Vec<_>>() {
        mgr.set_step_budget(id, Some(0)).unwrap();
    }
    let t0 = Instant::now();
    let idle = mgr.run_until(t0 + Duration::from_secs(30));
    assert!(idle.rounds <= 1, "an all-parked pool must not spin");
    assert!(t0.elapsed() < Duration::from_secs(5));
}

#[test]
fn events_narrate_the_full_lifecycle() {
    let shape = [1, 32, 32];
    let exec = executor(shape);
    let mut mgr = SessionManager::new(exec.plan(), ServePolicy::default());
    let a = mgr.admit(&input(shape, 0)).unwrap();
    mgr.retire(a).unwrap();
    let b = mgr.admit(&input(shape, 1)).unwrap();

    let events = mgr.drain_events();
    assert_eq!(
        events,
        vec![
            ServeEvent::Admitted { tenant: a, slot: 0 },
            ServeEvent::Retired { tenant: a },
            ServeEvent::Admitted { tenant: b, slot: 0 },
        ]
    );
    assert!(mgr.drain_events().is_empty(), "drain empties the queue");
}
