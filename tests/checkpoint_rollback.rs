//! Checkpoint/rollback semantics: `restore` followed by re-stepping
//! must be **bit-identical** — grids and counters — to an uninterrupted
//! twin, for solo sessions (engine and naive backends, fused and 3D
//! staged-window kernels) and for batch members, with the documented
//! typed errors on misuse.

use sparstencil::grid::Grid;
use sparstencil::pipeline::Executor;
use sparstencil::plan::Options;
use sparstencil::session::{Checkpoint, SessionError};
use sparstencil::stencil::StencilKernel;

fn opts_for(k: &StencilKernel) -> Options {
    if k.dims() == 3 {
        Options {
            layout: Some((4, 4)),
            ..Options::default()
        }
    } else {
        Options::default()
    }
}

fn input_for(k: &StencilKernel, shape: [usize; 3], seed: usize) -> Grid<f32> {
    Grid::<f32>::from_fn_3d(k.dims(), shape, |z, y, x| {
        ((z * 11 + y * 5 + x * 3 + seed * 17) % 23) as f32 * 0.04
    })
}

/// The core identity: checkpoint at step `at`, keep stepping, restore,
/// re-step to `total`, and compare against a twin that ran `total`
/// steps uninterrupted. Grids AND counters must be bit-identical.
fn assert_rollback_identity(k: &StencilKernel, shape: [usize; 3], at: usize, total: usize) {
    let exec = Executor::<f32>::new(k, shape, &opts_for(k)).unwrap();
    let input = input_for(k, shape, 0);

    let mut twin = exec.session(&input);
    twin.step_n(total);

    let mut sim = exec.session(&input);
    sim.step_n(at);
    let ck = sim.checkpoint().unwrap();
    assert!(ck.is_filled());
    assert_eq!(ck.steps(), at);

    // Diverge past the checkpoint, then rewind.
    sim.step_n(3);
    sim.restore(&ck).unwrap();
    assert_eq!(
        sim.steps(),
        at,
        "{}: restore rewinds the step count",
        k.name()
    );
    sim.step_n(total - at);

    assert_eq!(
        sim.to_grid(),
        twin.to_grid(),
        "{}: restored run must equal the uninterrupted twin",
        k.name()
    );
    assert_eq!(
        sim.stats().unwrap().counters,
        twin.stats().unwrap().counters,
        "{}: counters must rewind with the field",
        k.name()
    );
}

#[test]
fn rollback_identity_2d() {
    assert_rollback_identity(&StencilKernel::box2d9p(), [1, 44, 48], 2, 5);
}

#[test]
fn rollback_identity_3d_staged_window() {
    assert_rollback_identity(&StencilKernel::box3d27p(), [12, 20, 20], 1, 3);
}

#[test]
fn rollback_identity_fused_kernel() {
    let fused = StencilKernel::heat2d().temporal_fusion(3);
    assert_rollback_identity(&fused, [1, 40, 40], 2, 4);
}

#[test]
fn rollback_identity_naive_backend() {
    let k = StencilKernel::box2d9p();
    let shape = [1, 30, 34];
    let exec = Executor::<f32>::new(&k, shape, &Options::default()).unwrap();
    let input = input_for(&k, shape, 1);

    let mut twin = exec.session_naive(&input);
    twin.step_n(4);

    let mut sim = exec.session_naive(&input);
    sim.step_n(2);
    let ck = sim.checkpoint().unwrap();
    sim.step_n(5);
    sim.restore(&ck).unwrap();
    sim.step_n(2);

    assert_eq!(sim.to_grid(), twin.to_grid());
}

/// Restoring an immediate-post-checkpoint session is a no-op: the field
/// is byte-for-byte what the checkpoint holds.
#[test]
fn restore_is_idempotent() {
    let k = StencilKernel::box2d9p();
    let exec = Executor::<f32>::new(&k, [1, 40, 40], &Options::default()).unwrap();
    let mut sim = exec.session(&input_for(&k, [1, 40, 40], 2));
    sim.step_n(3);
    let ck = sim.checkpoint().unwrap();
    let before = sim.to_grid();
    sim.restore(&ck).unwrap();
    sim.restore(&ck).unwrap();
    assert_eq!(sim.to_grid(), before);
    assert_eq!(sim.steps(), 3);
}

/// `checkpoint_into` reuses the caller's buffer across refills and the
/// refilled snapshot behaves exactly like a fresh one.
#[test]
fn checkpoint_buffer_reuse_across_refills() {
    let k = StencilKernel::box2d9p();
    let exec = Executor::<f32>::new(&k, [1, 40, 40], &Options::default()).unwrap();
    let mut sim = exec.session(&input_for(&k, [1, 40, 40], 3));

    let mut ck = Checkpoint::new();
    assert!(!ck.is_filled());
    sim.checkpoint_into(&mut ck).unwrap();
    sim.step_n(2);
    sim.checkpoint_into(&mut ck).unwrap(); // refill in place
    assert_eq!(ck.steps(), 2);
    let at2 = sim.to_grid();
    sim.step_n(4);
    sim.restore(&ck).unwrap();
    assert_eq!(sim.to_grid(), at2);
}

#[test]
fn restore_from_empty_checkpoint_is_a_typed_error() {
    let k = StencilKernel::box2d9p();
    let exec = Executor::<f32>::new(&k, [1, 40, 40], &Options::default()).unwrap();
    let mut sim = exec.session(&input_for(&k, [1, 40, 40], 0));
    let ck = Checkpoint::<f32>::new();
    assert_eq!(sim.restore(&ck), Err(SessionError::EmptyCheckpoint));
}

#[test]
fn restore_shape_mismatch_is_a_typed_error() {
    let k = StencilKernel::box2d9p();
    let small = Executor::<f32>::new(&k, [1, 30, 30], &Options::default()).unwrap();
    let large = Executor::<f32>::new(&k, [1, 40, 40], &Options::default()).unwrap();
    let mut sim_small = small.session(&input_for(&k, [1, 30, 30], 0));
    sim_small.step_n(1);
    let ck = sim_small.checkpoint().unwrap();

    let mut sim_large = large.session(&input_for(&k, [1, 40, 40], 0));
    match sim_large.restore(&ck) {
        Err(SessionError::ShapeMismatch { .. }) => {}
        other => panic!("expected ShapeMismatch, got {other:?}"),
    }
}

/// Restore validates checkpoint *contents*, not just shape: a snapshot
/// holding NaN/Inf (e.g. taken after numerics already went bad) is
/// refused with [`SessionError::NonFiniteInput`] instead of silently
/// reviving a corrupt state.
#[test]
fn restore_rejects_non_finite_checkpoint_solo() {
    let k = StencilKernel::box2d9p();
    let shape = [1, 40, 40];
    let exec = Executor::<f32>::new(&k, shape, &Options::default()).unwrap();

    // The infallible constructor skips input validation, so a NaN can be
    // smuggled into a live session and snapshotted.
    let mut tainted_input = input_for(&k, shape, 0);
    tainted_input.set(0, 20, 20, f32::NAN);
    let tainted = exec.session(&tainted_input);
    let bad_ck = tainted.checkpoint().unwrap();

    let mut sim = exec.session(&input_for(&k, shape, 1));
    sim.step_n(2);
    let before = sim.to_grid();
    match sim.restore(&bad_ck) {
        Err(SessionError::NonFiniteInput { session: 0, .. }) => {}
        other => panic!("expected NonFiniteInput, got {other:?}"),
    }
    assert_eq!(
        sim.to_grid(),
        before,
        "rejected restore must not touch state"
    );
    assert_eq!(sim.steps(), 2);
}

/// The batch path reports the same validation failure with the member's
/// slot index, and the member keeps running on its old state.
#[test]
fn restore_rejects_non_finite_checkpoint_batch_member() {
    let k = StencilKernel::box2d9p();
    let shape = [1, 40, 40];
    let exec = Executor::<f32>::new(&k, shape, &Options::default()).unwrap();

    let mut tainted_input = input_for(&k, shape, 0);
    tainted_input.set(0, 15, 25, f32::NAN);
    let bad_ck = exec.session(&tainted_input).checkpoint().unwrap();

    let inputs: Vec<Grid<f32>> = (1..4).map(|s| input_for(&k, shape, s)).collect();
    let mut batch = exec.batch(&inputs);
    batch.step_all_n(2);
    match batch.restore(2, &bad_ck) {
        Err(SessionError::NonFiniteInput { session: 2, .. }) => {}
        other => panic!("expected NonFiniteInput for member 2, got {other:?}"),
    }
    batch.step_all();
    let mut solo = exec.session(&inputs[2]);
    solo.step_n(3);
    assert_eq!(
        batch.to_grid(2),
        solo.to_grid(),
        "member must keep its valid trajectory after the rejected restore"
    );
}

/// Checkpoint/restore interleaved with membership churn: a snapshot
/// stays valid across unrelated `retire`/`admit` calls — including when
/// the checkpointed member itself is *moved* by a swap-remove — and a
/// restored member resumes bit-identically with the buffer table
/// pointing at the right slots.
#[test]
fn restore_survives_membership_churn() {
    let k = StencilKernel::box3d27p();
    let shape = [10, 20, 20];
    let exec = Executor::<f32>::new(&k, shape, &opts_for(&k)).unwrap();
    let inputs: Vec<Grid<f32>> = (0..5).map(|s| input_for(&k, shape, s)).collect();

    let mut batch = exec.batch(&inputs[..4]);
    batch.step_all_n(2);

    // Snapshot the member in the LAST slot, then churn the membership:
    // retiring slot 1 swaps that member down into slot 1, and a fresh
    // admission reoccupies the tail slot.
    let ck = batch.checkpoint(3);
    assert_eq!(ck.steps(), 2);
    batch.retire(1); // input 3's member moves: slot 3 → slot 1
    let fresh = batch.admit(&inputs[4]).unwrap();
    assert_eq!(fresh, 3);
    batch.step_all_n(2); // steps: [4, 4, 4, 2]

    // Restore the moved member at its NEW slot from the pre-churn
    // snapshot, catch it up solo, and rejoin.
    batch.restore(1, &ck).unwrap();
    assert_eq!(batch.steps(1), 2, "restore rewinds the moved member");
    batch.session_mut(1).step_n(2);
    batch.step_all(); // steps: [5, 5, 5, 3]

    // Every slot must hold exactly the input its swap history says it
    // holds, bit-identical to a solo twin — proving the buffer table
    // tracked the churn and the restore touched only its member.
    for (slot, input_idx, want_steps) in [(0usize, 0usize, 5usize), (1, 3, 5), (2, 2, 5), (3, 4, 3)]
    {
        let mut solo = exec.session(&inputs[input_idx]);
        solo.step_n(want_steps);
        assert_eq!(batch.steps(slot), want_steps, "slot {slot} step count");
        assert_eq!(
            batch.to_grid(slot),
            solo.to_grid(),
            "slot {slot} (input {input_idx}) after churn + restore"
        );
        assert_eq!(batch.stats(slot).counters, solo.stats().unwrap().counters);
    }
}

/// Batch members checkpoint and restore individually: a restored member
/// re-stepped inside the batch matches its uninterrupted solo twin, and
/// the other members never notice.
#[test]
fn batch_member_rollback_identity() {
    let k = StencilKernel::box3d27p();
    let shape = [12, 20, 20];
    let exec = Executor::<f32>::new(&k, shape, &opts_for(&k)).unwrap();
    let inputs: Vec<Grid<f32>> = (0..4).map(|s| input_for(&k, shape, s)).collect();

    let mut batch = exec.batch(&inputs);
    batch.step_all_n(2);
    let ck = batch.checkpoint(1);
    batch.step_all_n(2);

    batch.restore(1, &ck).unwrap();
    assert_eq!(batch.steps(1), 2);
    // Catch member 1 back up through its solo view, then compare all.
    batch.session_mut(1).step_n(2);

    for (i, input) in inputs.iter().enumerate() {
        let mut solo = exec.session(input);
        solo.step_n(4);
        assert_eq!(
            batch.to_grid(i),
            solo.to_grid(),
            "member {i} must equal its solo twin after member 1's rollback"
        );
        assert_eq!(batch.stats(i).counters, solo.stats().unwrap().counters);
    }
}
