//! Checkpoint/rollback semantics: `restore` followed by re-stepping
//! must be **bit-identical** — grids and counters — to an uninterrupted
//! twin, for solo sessions (engine and naive backends, fused and 3D
//! staged-window kernels) and for batch members, with the documented
//! typed errors on misuse.

use sparstencil::grid::Grid;
use sparstencil::pipeline::Executor;
use sparstencil::plan::Options;
use sparstencil::session::{Checkpoint, SessionError};
use sparstencil::stencil::StencilKernel;

fn opts_for(k: &StencilKernel) -> Options {
    if k.dims() == 3 {
        Options {
            layout: Some((4, 4)),
            ..Options::default()
        }
    } else {
        Options::default()
    }
}

fn input_for(k: &StencilKernel, shape: [usize; 3], seed: usize) -> Grid<f32> {
    Grid::<f32>::from_fn_3d(k.dims(), shape, |z, y, x| {
        ((z * 11 + y * 5 + x * 3 + seed * 17) % 23) as f32 * 0.04
    })
}

/// The core identity: checkpoint at step `at`, keep stepping, restore,
/// re-step to `total`, and compare against a twin that ran `total`
/// steps uninterrupted. Grids AND counters must be bit-identical.
fn assert_rollback_identity(k: &StencilKernel, shape: [usize; 3], at: usize, total: usize) {
    let exec = Executor::<f32>::new(k, shape, &opts_for(k)).unwrap();
    let input = input_for(k, shape, 0);

    let mut twin = exec.session(&input);
    twin.step_n(total);

    let mut sim = exec.session(&input);
    sim.step_n(at);
    let ck = sim.checkpoint().unwrap();
    assert!(ck.is_filled());
    assert_eq!(ck.steps(), at);

    // Diverge past the checkpoint, then rewind.
    sim.step_n(3);
    sim.restore(&ck).unwrap();
    assert_eq!(
        sim.steps(),
        at,
        "{}: restore rewinds the step count",
        k.name()
    );
    sim.step_n(total - at);

    assert_eq!(
        sim.to_grid(),
        twin.to_grid(),
        "{}: restored run must equal the uninterrupted twin",
        k.name()
    );
    assert_eq!(
        sim.stats().unwrap().counters,
        twin.stats().unwrap().counters,
        "{}: counters must rewind with the field",
        k.name()
    );
}

#[test]
fn rollback_identity_2d() {
    assert_rollback_identity(&StencilKernel::box2d9p(), [1, 44, 48], 2, 5);
}

#[test]
fn rollback_identity_3d_staged_window() {
    assert_rollback_identity(&StencilKernel::box3d27p(), [12, 20, 20], 1, 3);
}

#[test]
fn rollback_identity_fused_kernel() {
    let fused = StencilKernel::heat2d().temporal_fusion(3);
    assert_rollback_identity(&fused, [1, 40, 40], 2, 4);
}

#[test]
fn rollback_identity_naive_backend() {
    let k = StencilKernel::box2d9p();
    let shape = [1, 30, 34];
    let exec = Executor::<f32>::new(&k, shape, &Options::default()).unwrap();
    let input = input_for(&k, shape, 1);

    let mut twin = exec.session_naive(&input);
    twin.step_n(4);

    let mut sim = exec.session_naive(&input);
    sim.step_n(2);
    let ck = sim.checkpoint().unwrap();
    sim.step_n(5);
    sim.restore(&ck).unwrap();
    sim.step_n(2);

    assert_eq!(sim.to_grid(), twin.to_grid());
}

/// Restoring an immediate-post-checkpoint session is a no-op: the field
/// is byte-for-byte what the checkpoint holds.
#[test]
fn restore_is_idempotent() {
    let k = StencilKernel::box2d9p();
    let exec = Executor::<f32>::new(&k, [1, 40, 40], &Options::default()).unwrap();
    let mut sim = exec.session(&input_for(&k, [1, 40, 40], 2));
    sim.step_n(3);
    let ck = sim.checkpoint().unwrap();
    let before = sim.to_grid();
    sim.restore(&ck).unwrap();
    sim.restore(&ck).unwrap();
    assert_eq!(sim.to_grid(), before);
    assert_eq!(sim.steps(), 3);
}

/// `checkpoint_into` reuses the caller's buffer across refills and the
/// refilled snapshot behaves exactly like a fresh one.
#[test]
fn checkpoint_buffer_reuse_across_refills() {
    let k = StencilKernel::box2d9p();
    let exec = Executor::<f32>::new(&k, [1, 40, 40], &Options::default()).unwrap();
    let mut sim = exec.session(&input_for(&k, [1, 40, 40], 3));

    let mut ck = Checkpoint::new();
    assert!(!ck.is_filled());
    sim.checkpoint_into(&mut ck).unwrap();
    sim.step_n(2);
    sim.checkpoint_into(&mut ck).unwrap(); // refill in place
    assert_eq!(ck.steps(), 2);
    let at2 = sim.to_grid();
    sim.step_n(4);
    sim.restore(&ck).unwrap();
    assert_eq!(sim.to_grid(), at2);
}

#[test]
fn restore_from_empty_checkpoint_is_a_typed_error() {
    let k = StencilKernel::box2d9p();
    let exec = Executor::<f32>::new(&k, [1, 40, 40], &Options::default()).unwrap();
    let mut sim = exec.session(&input_for(&k, [1, 40, 40], 0));
    let ck = Checkpoint::<f32>::new();
    assert_eq!(sim.restore(&ck), Err(SessionError::EmptyCheckpoint));
}

#[test]
fn restore_shape_mismatch_is_a_typed_error() {
    let k = StencilKernel::box2d9p();
    let small = Executor::<f32>::new(&k, [1, 30, 30], &Options::default()).unwrap();
    let large = Executor::<f32>::new(&k, [1, 40, 40], &Options::default()).unwrap();
    let mut sim_small = small.session(&input_for(&k, [1, 30, 30], 0));
    sim_small.step_n(1);
    let ck = sim_small.checkpoint().unwrap();

    let mut sim_large = large.session(&input_for(&k, [1, 40, 40], 0));
    match sim_large.restore(&ck) {
        Err(SessionError::ShapeMismatch { .. }) => {}
        other => panic!("expected ShapeMismatch, got {other:?}"),
    }
}

/// Batch members checkpoint and restore individually: a restored member
/// re-stepped inside the batch matches its uninterrupted solo twin, and
/// the other members never notice.
#[test]
fn batch_member_rollback_identity() {
    let k = StencilKernel::box3d27p();
    let shape = [12, 20, 20];
    let exec = Executor::<f32>::new(&k, shape, &opts_for(&k)).unwrap();
    let inputs: Vec<Grid<f32>> = (0..4).map(|s| input_for(&k, shape, s)).collect();

    let mut batch = exec.batch(&inputs);
    batch.step_all_n(2);
    let ck = batch.checkpoint(1);
    batch.step_all_n(2);

    batch.restore(1, &ck).unwrap();
    assert_eq!(batch.steps(1), 2);
    // Catch member 1 back up through its solo view, then compare all.
    batch.session_mut(1).step_n(2);

    for (i, input) in inputs.iter().enumerate() {
        let mut solo = exec.session(input);
        solo.step_n(4);
        assert_eq!(
            batch.to_grid(i),
            solo.to_grid(),
            "member {i} must equal its solo twin after member 1's rollback"
        );
        assert_eq!(batch.stats(i).counters, solo.stats().unwrap().counters);
    }
}
