//! Typed session errors and numeric-health tracking: the fallible
//! `try_*` surface returns [`SessionError`]s where the panicking
//! wrappers die, the scatter-folded NaN/Inf scan feeds per-session
//! [`Health`] records, and [`HealthPolicy::Quarantine`] sidelines a
//! tainted session — solo and batched — until recovered.

use sparstencil::grid::Grid;
use sparstencil::pipeline::Executor;
use sparstencil::plan::Options;
use sparstencil::session::{HealthPolicy, SessionError};
use sparstencil::stencil::StencilKernel;

fn exec_2d(shape: [usize; 3]) -> Executor<f32> {
    Executor::<f32>::new(&StencilKernel::box2d9p(), shape, &Options::default()).unwrap()
}

fn input(shape: [usize; 3], seed: usize) -> Grid<f32> {
    Grid::<f32>::from_fn_3d(2, shape, |z, y, x| {
        ((z * 11 + y * 5 + x * 3 + seed * 17) % 23) as f32 * 0.04
    })
}

fn nan_input(shape: [usize; 3]) -> Grid<f32> {
    let mut g = input(shape, 0);
    g.set(0, shape[1] / 2, shape[2] / 2, f32::NAN);
    g
}

// ---------------------------------------------------------------- typed errors

#[test]
fn empty_batch_is_a_typed_error() {
    let exec = exec_2d([1, 40, 40]);
    assert_eq!(exec.try_batch(&[]).err(), Some(SessionError::EmptyBatch));
    // The panicking wrapper carries the legacy message verbatim.
    assert_eq!(
        SessionError::EmptyBatch.to_string(),
        "a batch needs at least one session"
    );
}

#[test]
fn mixed_shape_batch_is_a_typed_error() {
    let exec = exec_2d([1, 40, 40]);
    let good = input([1, 40, 40], 0);
    let bad = input([1, 30, 30], 1);
    match exec.try_batch(&[good, bad]).err() {
        Some(e @ SessionError::ShapeMismatch { expected, got }) => {
            assert_eq!(expected, [1, 40, 40]);
            assert_eq!(got, [1, 30, 30]);
            // Legacy `#[should_panic]` substring lives in the Display text.
            assert!(e.to_string().contains("differs from the compiled plan"));
        }
        other => panic!("expected ShapeMismatch, got {other:?}"),
    }
}

#[test]
fn non_finite_batch_input_is_a_typed_error() {
    let exec = exec_2d([1, 40, 40]);
    let inputs = [input([1, 40, 40], 0), nan_input([1, 40, 40])];
    match exec.try_batch(&inputs).err() {
        Some(SessionError::NonFiniteInput { session, index }) => {
            assert_eq!(session, 1);
            assert_eq!(index, inputs[1].first_non_finite().unwrap());
        }
        other => panic!("expected NonFiniteInput, got {other:?}"),
    }
}

#[test]
fn non_finite_solo_input_is_a_typed_error() {
    let exec = exec_2d([1, 40, 40]);
    assert!(matches!(
        exec.try_session(&nan_input([1, 40, 40])),
        Err(SessionError::NonFiniteInput { session: 0, .. })
    ));
    // try_load performs the same scan; unchecked load skips it.
    let mut sim = exec.session(&input([1, 40, 40], 0));
    assert!(matches!(
        sim.try_load(&nan_input([1, 40, 40])),
        Err(SessionError::NonFiniteInput { session: 0, .. })
    ));
    sim.load(&nan_input([1, 40, 40])); // unchecked: accepted
}

#[test]
fn zero_probe_cadence_is_a_typed_error() {
    let exec = exec_2d([1, 40, 40]);
    let mut sim = exec.session(&input([1, 40, 40], 0));
    assert_eq!(
        sim.try_probe(0, |_, _| {}).err(),
        Some(SessionError::ProbeMisuse)
    );
    assert!(sim.try_probe(2, |_, _| {}).is_ok());
}

// ------------------------------------------------------------- solo health

#[test]
fn record_policy_counts_tainted_steps_and_keeps_stepping() {
    let exec = exec_2d([1, 40, 40]);
    let mut sim = exec.session(&input([1, 40, 40], 0));
    assert_eq!(sim.health_policy(), HealthPolicy::Record);

    sim.load(&nan_input([1, 40, 40])); // unchecked path injects the NaN
    sim.step_n(3); // NaN propagates: every step stores non-finite values
    let h = sim.health();
    assert_eq!(h.nonfinite_steps, 3);
    assert_eq!(h.first_nonfinite_step, Some(1));
    assert!(!h.is_quarantined());
    assert_eq!(sim.steps(), 3);
}

#[test]
fn ignore_policy_records_nothing() {
    let exec = exec_2d([1, 40, 40]);
    let mut sim = exec.session(&input([1, 40, 40], 0));
    sim.set_health_policy(HealthPolicy::Ignore);
    sim.load(&nan_input([1, 40, 40]));
    sim.step_n(2);
    assert_eq!(sim.health().nonfinite_steps, 0);
    assert_eq!(sim.health().first_nonfinite_step, None);
}

#[test]
fn quarantine_policy_sidelines_a_tainted_solo_session_until_recovery() {
    let exec = exec_2d([1, 40, 40]);
    let mut sim = exec.session(&input([1, 40, 40], 0));
    sim.set_health_policy(HealthPolicy::Quarantine);
    sim.step_n(2); // healthy prelude
    let ck = sim.checkpoint().unwrap();

    sim.load(&nan_input([1, 40, 40]));
    assert_eq!(
        sim.try_step_n(5),
        Err(SessionError::Quarantined {
            session: 0,
            step: 1
        })
    );
    assert_eq!(sim.steps(), 1, "quarantine stops at the tainted step");
    assert!(sim.health().is_quarantined());
    // Already-quarantined: error without advancing.
    assert_eq!(
        sim.try_step_n(1),
        Err(SessionError::Quarantined {
            session: 0,
            step: 1
        })
    );
    assert_eq!(sim.steps(), 1);

    // Rollback is the targeted recovery: quarantine clears, stepping resumes.
    sim.restore(&ck).unwrap();
    assert!(!sim.health().is_quarantined());
    assert!(sim.try_step_n(2).is_ok());
    assert_eq!(sim.steps(), 4);
}

// ------------------------------------------------------------ batch health

/// A NaN-loaded member under `Quarantine` sits out subsequent batched
/// steps while every healthy member stays bit-identical to its solo
/// twin; `load` recovers the member.
#[test]
fn batch_quarantine_isolates_the_tainted_member() {
    let shape = [1, 44, 48];
    let exec = exec_2d(shape);
    let inputs: Vec<Grid<f32>> = (0..4).map(|s| input(shape, s)).collect();

    let mut batch = exec.batch(&inputs);
    batch.set_health_policy_all(HealthPolicy::Quarantine);
    batch.step_all_n(2);

    batch.load(2, &nan_input(shape)); // unchecked: the NaN goes live
    batch.step_all(); // member 2's step completes tainted -> quarantined
    assert!(batch.health(2).is_quarantined());
    assert!(!batch.is_active(2));
    assert_eq!(
        batch.error(2),
        Some(SessionError::Quarantined {
            session: 2,
            step: 1
        })
    );

    let quarantined_steps = batch.steps(2);
    batch.step_all_n(2); // degraded mode: member 2 sits out
    assert_eq!(batch.steps(2), quarantined_steps);

    for (i, inp) in inputs.iter().enumerate() {
        if i == 2 {
            continue;
        }
        let mut solo = exec.session(inp);
        solo.step_n(5);
        assert_eq!(batch.steps(i), 5);
        assert_eq!(
            batch.to_grid(i),
            solo.to_grid(),
            "healthy member {i} must match its solo twin through degraded steps"
        );
        assert_eq!(batch.stats(i).counters, solo.stats().unwrap().counters);
    }

    // session_mut refuses a quarantined member; try_session_mut types it.
    assert!(matches!(
        batch.try_session_mut(2).err(),
        Some(SessionError::Quarantined { session: 2, .. })
    ));

    // Reload recovers the member and clears its record.
    batch.load(2, &input(shape, 2));
    assert!(batch.is_active(2));
    assert_eq!(batch.error(2), None);
    batch.step_all();
    assert_eq!(batch.steps(2), 1);
}

#[test]
fn batch_record_policy_observes_without_sidelining() {
    let shape = [1, 44, 48];
    let exec = exec_2d(shape);
    let inputs: Vec<Grid<f32>> = (0..2).map(|s| input(shape, s)).collect();
    let mut batch = exec.batch(&inputs); // default policy: Record

    batch.load(0, &nan_input(shape));
    batch.step_all_n(2);
    assert_eq!(batch.health(0).nonfinite_steps, 2);
    assert_eq!(batch.health(0).first_nonfinite_step, Some(1));
    assert!(batch.is_active(0), "Record never sidelines");
    assert_eq!(batch.steps(0), 2);
    assert_eq!(batch.health(1).nonfinite_steps, 0);
}

/// The administrative quarantine hook (no NaN required) drives the same
/// degraded path the bench suite measures.
#[test]
fn administrative_quarantine_and_reset_recovery() {
    let shape = [1, 44, 48];
    let exec = exec_2d(shape);
    let inputs: Vec<Grid<f32>> = (0..3).map(|s| input(shape, s)).collect();
    let mut batch = exec.batch(&inputs);

    batch.step_all();
    batch.quarantine(1);
    assert!(batch.health(1).is_quarantined());
    batch.step_all_n(2);
    assert_eq!(batch.steps(1), 1, "quarantined member sat out");
    assert_eq!(batch.steps(0), 3);

    batch.reset(); // reset clears quarantine everywhere
    assert!(batch.is_active(1));
    for i in 0..3 {
        assert_eq!(batch.steps(i), 0);
    }
    batch.step_all();
    assert_eq!(batch.steps(1), 1);
}

/// The solo per-member view tracks health through the same policy hooks.
#[test]
fn batch_session_view_tracks_health() {
    let shape = [1, 44, 48];
    let exec = exec_2d(shape);
    let inputs: Vec<Grid<f32>> = (0..2).map(|s| input(shape, s)).collect();
    let mut batch = exec.batch(&inputs);

    batch.load(0, &nan_input(shape));
    batch.session_mut(0).step_n(2);
    assert_eq!(batch.health(0).nonfinite_steps, 2);

    // Under Quarantine the view's next step sidelines the member, and
    // the batch-level surface reports it.
    batch.set_health_policy(0, HealthPolicy::Quarantine);
    batch.session_mut(0).step();
    assert!(batch.health(0).is_quarantined());
    assert!(batch.try_session_mut(0).is_err());
}

// --------------------------------------------------------------- legacy panics

#[test]
#[should_panic(expected = "a batch needs at least one session")]
fn empty_batch_wrapper_still_panics() {
    let exec = exec_2d([1, 40, 40]);
    let _ = exec.batch(&[]);
}

#[test]
#[should_panic(expected = "was quarantined at step")]
fn stepping_quarantined_member_via_wrapper_panics() {
    let shape = [1, 40, 40];
    let exec = exec_2d(shape);
    let mut batch = exec.batch(&[input(shape, 0)]);
    batch.quarantine(0);
    let _ = batch.session_mut(0);
}
