//! Fault-injected serving soak (feature `fault-inject`): a supervised
//! pool of 10+ tenants survives 200+ rounds of random membership churn,
//! injected panics, and NaN storms — every recoverable member is
//! auto-restored **bit-identically** to a solo twin, nobody is evicted,
//! and the pool never deadlocks. Run with:
//!
//! ```text
//! cargo test --features fault-inject --test serve_soak
//! ```
//!
//! CI runs this at 1 and 4 worker lanes (`RAYON_NUM_THREADS`): panic
//! unwinding and claim draining only cross real thread boundaries with
//! a multi-worker pool.
#![cfg(feature = "fault-inject")]

use std::collections::BTreeMap;

use sparstencil::exec::fault;
use sparstencil::grid::Grid;
use sparstencil::pipeline::Executor;
use sparstencil::plan::Options;
use sparstencil::session::Simulation;
use sparstencil::stencil::StencilKernel;
use sparstencil_serve::{ServePolicy, SessionManager, TenantId, TenantStatus};

const SHAPE: [usize; 3] = [1, 32, 32];
const INITIAL_TENANTS: usize = 10;
const ROUNDS: u64 = 220;

fn input(seed: usize) -> Grid<f32> {
    Grid::<f32>::from_fn_3d(2, SHAPE, |z, y, x| {
        ((z * 11 + y * 5 + x * 3 + seed * 17) % 23) as f32 * 0.04
    })
}

/// Deterministic xorshift64*: the soak must replay identically.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

/// A tenant that faulted keeps a tainted or rolled-back state only
/// while its status is `Faulted`; in every other live state the
/// supervisor has already replayed it to a clean trajectory.
fn is_clean(status: &TenantStatus) -> bool {
    matches!(
        status,
        TenantStatus::Running | TenantStatus::AtBudget | TenantStatus::BackingOff { .. }
    )
}

#[test]
fn fault_injected_serving_soak() {
    let exec = Executor::<f32>::new(&StencilKernel::heat2d(), SHAPE, &Options::default()).unwrap();
    let policy = ServePolicy {
        max_sessions: 12,
        checkpoint_every: 2,
        checkpoint_ring: 3,
        max_recoveries: 8,
        backoff_base: 1,
        backoff_cap: 4,
        heal_after: 8,
        ..ServePolicy::default()
    };
    let mut mgr = SessionManager::new(exec.plan(), policy);
    let mut rng = Rng(0x5EED_CAFE_F00D_0001);
    let mut next_seed = 0usize;

    // Solo twins: the ground truth each tenant must stay bit-identical
    // to. `usize` tracks the twin's seed for diagnostics.
    let mut twins: BTreeMap<TenantId, (usize, Simulation<'_, f32>)> = BTreeMap::new();
    fn admit_tenant<'e>(
        exec: &'e Executor<f32>,
        mgr: &mut SessionManager<'_, f32>,
        twins: &mut BTreeMap<TenantId, (usize, Simulation<'e, f32>)>,
        seed: usize,
    ) -> TenantId {
        let grid = input(seed);
        let id = mgr.admit(&grid).expect("soak stays within capacity");
        twins.insert(id, (seed, exec.session(&grid)));
        id
    }
    for _ in 0..INITIAL_TENANTS {
        admit_tenant(&exec, &mut mgr, &mut twins, next_seed);
        next_seed += 1;
    }

    let mut recovered_total = 0usize;
    let mut evicted_total = 0usize;
    let mut faults_armed = 0usize;
    let mut compared = 0usize;

    for round in 0..ROUNDS {
        // Membership churn: every 13th round retire a random live tenant
        // (keeping at least 8, per the acceptance bar) and admit a fresh
        // one in its place.
        if round % 13 == 12 && mgr.live_sessions() > 8 {
            let live: Vec<TenantId> = mgr.tenants().collect();
            let victim = live[rng.below(live.len())];
            mgr.retire(victim).expect("victim is live");
            twins.remove(&victim);
            admit_tenant(&exec, &mut mgr, &mut twins, next_seed);
            next_seed += 1;
        }

        // Fault injection: every 5th round arm a one-shot panic or NaN
        // storm against a currently-running tenant's slot (a running
        // member is active, so the hook fires inside this round's step).
        if round % 5 == 3 {
            let running: Vec<TenantId> = mgr
                .tenants()
                .filter(|id| mgr.status(*id) == Some(TenantStatus::Running))
                .collect();
            if !running.is_empty() {
                let victim = running[rng.below(running.len())];
                let slot = mgr.slot_of(victim).expect("running tenant has a slot");
                if rng.next() & 1 == 0 {
                    fault::arm_panic(slot);
                } else {
                    fault::arm_nan_storm(slot);
                }
                faults_armed += 1;
            }
        }

        let report = mgr.step();
        recovered_total += report.recovered;
        evicted_total += report.evicted;

        // Keep every clean tenant's twin caught up to its observed step
        // count, and spot-check one tenant's field per round.
        let live: Vec<TenantId> = mgr.tenants().collect();
        for id in &live {
            let status = mgr.status(*id).expect("tenant is live");
            if !is_clean(&status) {
                continue;
            }
            let steps = mgr.steps(*id).expect("tenant is live");
            let (seed, twin) = twins.get_mut(id).expect("twins track membership");
            assert!(
                twin.steps() <= steps,
                "round {round}: tenant {id} (seed {seed}) went backwards: \
                 twin at {}, observed {steps}",
                twin.steps()
            );
            twin.step_n(steps - twin.steps());
        }
        if !live.is_empty() {
            let probe = live[(round % live.len() as u64) as usize];
            if mgr.status(probe).as_ref().is_some_and(is_clean) {
                let (seed, twin) = &twins[&probe];
                assert_eq!(
                    mgr.to_grid(probe).expect("probe is live"),
                    twin.to_grid(),
                    "round {round}: tenant {probe} (seed {seed}) diverged from its solo twin"
                );
                compared += 1;
            }
        }
    }

    // Nothing armed may outlive the soak (a fault aimed at a slot that
    // went idle would otherwise fire on an innocent later occupant).
    fault::disarm();

    // Settle: give in-flight recoveries and backoffs bounded time to
    // drain, then require the whole pool healthy.
    for _ in 0..32 {
        if mgr
            .tenants()
            .all(|id| mgr.status(id) == Some(TenantStatus::Running))
        {
            break;
        }
        let report = mgr.step();
        recovered_total += report.recovered;
        evicted_total += report.evicted;
    }

    // The acceptance bar: faults really fired, every recoverable member
    // was auto-restored (no evictions), the pool kept stepping the
    // whole time, and every survivor is bit-identical to its solo twin.
    assert!(
        faults_armed >= 40,
        "soak must inject a meaningful fault load, armed only {faults_armed}"
    );
    assert!(
        recovered_total >= faults_armed / 2,
        "supervision must actually recover members: {recovered_total} recoveries \
         for {faults_armed} armed faults"
    );
    assert_eq!(evicted_total, 0, "every injected fault is recoverable");
    assert!(compared >= 150, "spot checks must have run, got {compared}");
    assert_eq!(
        mgr.round(),
        ROUNDS + (mgr.round() - ROUNDS),
        "pool never deadlocked"
    );
    assert!(mgr.live_sessions() >= 8);
    assert!(mgr.latency().count() > 0, "stepped rounds record latency");

    for id in mgr.tenants().collect::<Vec<_>>() {
        assert_eq!(mgr.status(id), Some(TenantStatus::Running));
        let steps = mgr.steps(id).expect("tenant is live");
        let (seed, twin) = twins.get_mut(&id).expect("twins track membership");
        twin.step_n(steps - twin.steps());
        assert_eq!(
            mgr.to_grid(id).expect("tenant is live"),
            twin.to_grid(),
            "final: tenant {id} (seed {seed}) must end bit-identical to its solo twin"
        );
    }
}
