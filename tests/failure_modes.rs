//! Failure injection: every documented error path fires, and degenerate
//! configurations behave sanely instead of corrupting results.

use sparstencil::layout::ExecMode;
use sparstencil::pipeline::Executor;
use sparstencil::plan::{compile, CompileError, Options};
use sparstencil::prelude::{Grid, Precision, StencilKernel};
use sparstencil_tcu::FragmentShape;

#[test]
fn kernel_larger_than_grid() {
    let k = StencilKernel::box2d49p();
    assert_eq!(
        compile::<f32>(&k, [1, 5, 100], &Options::default()).unwrap_err(),
        CompileError::KernelTooLarge { axis: 1 }
    );
    assert_eq!(
        compile::<f32>(&k, [1, 100, 5], &Options::default()).unwrap_err(),
        CompileError::KernelTooLarge { axis: 2 }
    );
}

#[test]
fn sparse_fp64_refused_with_clear_error() {
    let k = StencilKernel::heat2d();
    let err = compile::<f64>(
        &k,
        [1, 40, 40],
        &Options {
            precision: Precision::Fp64,
            ..Options::default()
        },
    )
    .unwrap_err();
    assert_eq!(
        err,
        CompileError::SparseUnsupported {
            precision: Precision::Fp64
        }
    );
    assert!(err.to_string().contains("FP64"));
}

#[test]
fn fragment_mode_mismatch_both_directions() {
    let k = StencilKernel::heat2d();
    for (frag, mode) in [
        (FragmentShape::dense_fp16(), ExecMode::SparseTcu),
        (FragmentShape::sparse_fp16(), ExecMode::DenseTcu),
    ] {
        let err = compile::<f32>(
            &k,
            [1, 40, 40],
            &Options {
                frag: Some(frag),
                mode,
                ..Options::default()
            },
        )
        .unwrap_err();
        assert_eq!(err, CompileError::FragmentModeMismatch);
    }
}

#[test]
fn grid_exactly_kernel_sized_single_output() {
    // Valid region collapses to one point: the smallest legal problem.
    let k = StencilKernel::box2d9p();
    let shape = [1, 3, 3];
    let exec = Executor::<f32>::new(
        &k,
        shape,
        &Options {
            layout: Some((1, 1)),
            ..Options::default()
        },
    )
    .unwrap();
    let g = Grid::<f32>::from_fn_3d(2, shape, |_, _, _| 1.0);
    let (out, stats) = exec.run(&g, 1);
    assert!((out.get(0, 0, 0) - 1.0).abs() < 1e-2, "mean of ones is one");
    assert!(stats.counters.n_mma() >= 1);
}

#[test]
fn zero_iterations_is_identity_modulo_quantization() {
    let k = StencilKernel::heat2d();
    let shape = [1, 34, 34];
    let exec = Executor::<f32>::new(&k, shape, &Options::default()).unwrap();
    let g = Grid::<f32>::smooth_random(2, shape);
    let (out, stats) = exec.run(&g, 0);
    assert_eq!(stats.counters.n_mma(), 0);
    // Output equals the fp16-quantized input.
    let mut expect = g.clone();
    expect.quantize(Precision::Fp16);
    assert_eq!(out, expect);
}

#[test]
fn layout_exceeding_valid_region_still_correct() {
    // r1/r2 larger than the valid output extent: everything lands in one
    // partial tile; gathers clamp, scatters mask.
    let k = StencilKernel::heat2d();
    let shape = [1, 8, 8]; // valid region 6×6, layout 8×8
    let exec = Executor::<f32>::new(
        &k,
        shape,
        &Options {
            layout: Some((8, 8)),
            ..Options::default()
        },
    )
    .unwrap();
    let g = Grid::<f32>::smooth_random(2, shape);
    let err = exec.verify(&g, 1);
    assert!(err < 5e-2, "oversized tile err {err}");
}

#[test]
fn asymmetric_kernel_no_symmetry_assumptions() {
    // Sobel-x is antisymmetric; any accidental transpose/flip in the
    // layout pipeline would be caught here.
    let k = sparstencil_zoo::find("sobel-x-3x3").unwrap().kernel();
    let shape = [1, 40, 40];
    let exec = Executor::<f32>::new(
        &k,
        shape,
        &Options {
            layout: Some((4, 4)),
            ..Options::default()
        },
    )
    .unwrap();
    let g = Grid::<f32>::smooth_random(2, shape);
    let err = exec.verify(&g, 1);
    assert!(err < 5e-1, "sobel err {err}"); // |weights| sum to 8
}

#[test]
fn diagonal_kernel_stresses_conversion() {
    // Diagonal-only support produces a conflict structure unlike any
    // star/box; the Auto strategy must still reach a valid 2:4 layout.
    let k = sparstencil_zoo::find("motion-blur-5x5").unwrap().kernel();
    let shape = [1, 44, 44];
    let exec = Executor::<f32>::new(
        &k,
        shape,
        &Options {
            layout: Some((4, 4)),
            ..Options::default()
        },
    )
    .unwrap();
    let g = Grid::<f32>::smooth_random(2, shape);
    let err = exec.verify(&g, 1);
    assert!(err < 5e-2, "diagonal err {err}");
}

#[test]
fn parser_rejects_conflicting_forms() {
    let bad = "kernel x\ndims 2\nextent 3 3\nweights\n1 1 1\n1 1 1\n1 1 1\npoint 0 0 0 1.0\n";
    assert!(sparstencil::parse::parse_kernel(bad).is_err());
}

#[test]
fn two_four_compress_rejects_dense_rows() {
    use sparstencil_mat::{DenseMatrix, TwoFourMatrix};
    let dense = DenseMatrix::<f32>::from_fn(2, 8, |_, _| 1.0);
    assert!(TwoFourMatrix::compress(&dense).is_err());
}

#[test]
fn engine_rejects_malformed_fragments() {
    use sparstencil_mat::DenseMatrix;
    use sparstencil_tcu::{fragment::dense_fragment_mma, FragmentShape};
    let frag = FragmentShape::dense_fp16();
    let a = DenseMatrix::<f32>::zeros(16, 8); // wrong depth
    let b = DenseMatrix::<f32>::zeros(16, 8);
    let mut c = DenseMatrix::<f32>::zeros(16, 8);
    let r = std::panic::catch_unwind(move || dense_fragment_mma(frag, &a, &b, &mut c));
    assert!(r.is_err());
}
