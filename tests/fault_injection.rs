//! Deterministic fault injection (feature `fault-inject`): a panic or
//! NaN storm planted inside ONE member of an 8-session batch must leave
//! the other seven **bit-identical** — grids and counters — to solo
//! twins, report a typed error for the victim, and let `restore()`
//! bring the victim back. Run with:
//!
//! ```text
//! cargo test --features fault-inject --test fault_injection
//! ```
#![cfg(feature = "fault-inject")]

use std::sync::Mutex;

use sparstencil::exec::fault;
use sparstencil::grid::Grid;
use sparstencil::pipeline::Executor;
use sparstencil::plan::Options;
use sparstencil::session::{Checkpoint, HealthPolicy, SessionError};
use sparstencil::stencil::StencilKernel;

/// The injection cells are process-global one-shots; tests that arm
/// them must not interleave.
static LOCK: Mutex<()> = Mutex::new(());

const SESSIONS: usize = 8;
const VICTIM: usize = 3;

fn opts_for(k: &StencilKernel) -> Options {
    if k.dims() == 3 {
        Options {
            layout: Some((4, 4)),
            ..Options::default()
        }
    } else {
        Options::default()
    }
}

fn inputs_for(k: &StencilKernel, shape: [usize; 3]) -> Vec<Grid<f32>> {
    (0..SESSIONS)
        .map(|s| {
            Grid::<f32>::from_fn_3d(k.dims(), shape, |z, y, x| {
                ((z * 11 + y * 5 + x * 3 + s * 17) % 23) as f32 * 0.04
            })
        })
        .collect()
}

/// Assert that every non-victim member matches a solo twin stepped
/// `iters` times — fields and counters bit-identical.
fn assert_survivors_identical(
    exec: &Executor<f32>,
    batch: &sparstencil::session::Batch<'_, f32>,
    inputs: &[Grid<f32>],
    iters: usize,
) {
    for (i, input) in inputs.iter().enumerate() {
        if i == VICTIM {
            continue;
        }
        let mut solo = exec.session(input);
        solo.step_n(iters);
        assert_eq!(batch.steps(i), iters, "survivor {i} step count");
        assert_eq!(
            batch.to_grid(i),
            solo.to_grid(),
            "survivor {i} must be bit-identical to its solo twin"
        );
        assert_eq!(
            batch.stats(i).counters,
            solo.stats().unwrap().counters,
            "survivor {i} counters must be bit-identical"
        );
    }
}

fn panic_isolation_case(k: &StencilKernel, shape: [usize; 3]) {
    let exec = Executor::<f32>::new(k, shape, &opts_for(k)).unwrap();
    let inputs = inputs_for(k, shape);
    let mut batch = exec.batch(&inputs);

    batch.step_all(); // healthy step 1
    let ck = batch.checkpoint(VICTIM); // rollback target at step 1

    fault::arm_panic(VICTIM);
    batch.step_all(); // the victim's claim unwinds mid-dispatch
    fault::disarm();

    // Victim: poisoned, frozen at its pre-fault state (no partial swap).
    assert!(batch.is_poisoned(VICTIM));
    assert!(!batch.is_active(VICTIM));
    assert_eq!(batch.steps(VICTIM), 1, "poisoned step must not count");
    assert_eq!(
        batch.error(VICTIM),
        Some(SessionError::Poisoned { session: VICTIM })
    );
    {
        let mut solo = exec.session(&inputs[VICTIM]);
        solo.step_n(1);
        assert_eq!(
            batch.to_grid(VICTIM),
            solo.to_grid(),
            "{}: poisoned member's field is the last consistent pre-fault state",
            k.name()
        );
    }

    // Degraded mode: two more steps with the victim sitting out (the
    // survivors completed the fault step, so they are at 4).
    batch.step_all_n(2);
    assert_eq!(batch.steps(VICTIM), 1);
    assert_survivors_identical(&exec, &batch, &inputs, 4);

    // Rollback recovery: restore to step 1, catch up solo, rejoin.
    batch.restore(VICTIM, &ck).unwrap();
    assert!(batch.is_active(VICTIM));
    assert_eq!(batch.error(VICTIM), None);
    batch.session_mut(VICTIM).step_n(3); // catch up to the rest
    batch.step_all(); // full batch again
    let mut solo = exec.session(&inputs[VICTIM]);
    solo.step_n(5);
    assert_eq!(
        batch.to_grid(VICTIM),
        solo.to_grid(),
        "{}: restored victim must rejoin bit-identically",
        k.name()
    );
    assert_survivors_identical(&exec, &batch, &inputs, 5);
}

#[test]
fn injected_panic_is_isolated_2d() {
    let _guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    panic_isolation_case(&StencilKernel::box2d9p(), [1, 44, 48]);
}

#[test]
fn injected_panic_is_isolated_3d_staged_window() {
    let _guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    panic_isolation_case(&StencilKernel::box3d27p(), [12, 20, 20]);
}

#[test]
fn injected_nan_storm_quarantines_only_the_victim() {
    let _guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let k = StencilKernel::box2d9p();
    let shape = [1, 44, 48];
    let exec = Executor::<f32>::new(&k, shape, &opts_for(&k)).unwrap();
    let inputs = inputs_for(&k, shape);
    let mut batch = exec.batch(&inputs);
    batch.set_health_policy_all(HealthPolicy::Quarantine);

    batch.step_all(); // healthy step 1
    let ck = batch.checkpoint(VICTIM);

    fault::arm_nan_storm(VICTIM);
    batch.step_all(); // victim's input is NaN-bombed before dispatch
    fault::disarm();

    // The tainted step completes (solo semantics), then quarantines.
    assert!(batch.health(VICTIM).is_quarantined());
    assert!(!batch.is_poisoned(VICTIM));
    assert_eq!(batch.steps(VICTIM), 2);
    assert_eq!(batch.health(VICTIM).nonfinite_steps, 1);
    assert_eq!(
        batch.error(VICTIM),
        Some(SessionError::Quarantined {
            session: VICTIM,
            step: 2
        })
    );

    // Degraded mode: the quarantined member sits out.
    batch.step_all_n(2);
    assert_eq!(batch.steps(VICTIM), 2);
    assert_survivors_identical(&exec, &batch, &inputs, 4);

    // Rollback recovery: the NaN never reaches the restored state.
    batch.restore(VICTIM, &ck).unwrap();
    assert!(batch.is_active(VICTIM));
    batch.session_mut(VICTIM).step_n(3);
    batch.step_all();
    let mut solo = exec.session(&inputs[VICTIM]);
    solo.step_n(5);
    assert_eq!(
        batch.to_grid(VICTIM),
        solo.to_grid(),
        "restored victim must be NaN-free and bit-identical"
    );
    assert_eq!(batch.health(VICTIM).nonfinite_steps, 0);
    assert_survivors_identical(&exec, &batch, &inputs, 5);
}

/// A panic in a SOLO-view step of a batch member must propagate (no
/// batch dispatch to contain it) — but the injection hooks only fire on
/// the batched path, so arming then stepping solo is a no-op: the
/// armed cell stays set until the next batched step consumes it.
/// Disarm must clear it.
#[test]
fn disarm_clears_pending_injections() {
    let _guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let k = StencilKernel::box2d9p();
    let shape = [1, 40, 40];
    let exec = Executor::<f32>::new(&k, shape, &opts_for(&k)).unwrap();
    let inputs = inputs_for(&k, shape);
    let mut batch = exec.batch(&inputs);

    fault::arm_panic(0);
    fault::arm_nan_storm(1);
    fault::disarm();
    batch.step_all(); // nothing fires
    assert!(batch.is_active(0) && batch.is_active(1));
    assert_eq!(batch.health(1).nonfinite_steps, 0);
}

/// Restore on a poisoned member also works from an EMPTY checkpoint
/// path error: the typed error comes back instead of a panic, and the
/// member stays recoverable via reset.
#[test]
fn poisoned_member_restore_misuse_is_typed_then_reset_recovers() {
    let _guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let k = StencilKernel::box2d9p();
    let shape = [1, 40, 40];
    let exec = Executor::<f32>::new(&k, shape, &opts_for(&k)).unwrap();
    let inputs = inputs_for(&k, shape);
    let mut batch = exec.batch(&inputs);

    fault::arm_panic(2);
    batch.step_all();
    fault::disarm();
    assert!(batch.is_poisoned(2));

    let empty = Checkpoint::<f32>::new();
    assert_eq!(batch.restore(2, &empty), Err(SessionError::EmptyCheckpoint));
    assert!(batch.is_poisoned(2), "failed restore must not clear poison");

    batch.reset();
    assert!(batch.is_active(2));
    batch.step_all();
    assert_eq!(batch.steps(2), 1);
}

/// A panic planted in ONE shard of a halo-exchanging
/// [`sparstencil_shard::ShardedSimulation`] must abort the step
/// **all-or-nothing**: the typed error names the victim, every shard's
/// visible field (victim included) stays bit-identical to the pre-step
/// state — no partial-step corruption from a half-run exchange — and
/// `heal()` resumes bit-exactly from right there.
#[test]
fn injected_panic_in_one_shard_aborts_the_whole_step_cleanly() {
    use sparstencil_shard::{ShardError, ShardedSimulation};

    let _guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let k = StencilKernel::box3d27p();
    let shape = [10, 20, 20];
    let victim = 2;
    let opts = opts_for(&k);
    let input = Grid::<f32>::smooth_random(3, shape);

    // Solo oracle for every step the sharded job completes.
    let exec = Executor::<f32>::new(&k, shape, &opts).unwrap();
    let mut solo = exec.session(&input);

    let mut sharded = ShardedSimulation::<f32>::new(&k, &input, &opts, 4);
    sharded.step(); // healthy step 1
    solo.step();
    let pre_fault = sharded.to_grid();
    assert_eq!(pre_fault, solo.to_grid());

    fault::arm_panic(victim);
    let err = sharded.try_step().err().unwrap();
    fault::disarm();
    assert_eq!(
        err,
        ShardError::Session(SessionError::Poisoned { session: victim })
    );
    assert_eq!(sharded.steps(), 1, "aborted step must not count");
    assert_eq!(
        sharded.shard_error(victim),
        Some(SessionError::Poisoned { session: victim })
    );
    // All-or-nothing: NO shard moved — the assembled field is the exact
    // pre-fault state, not a half-exchanged mixture.
    assert_eq!(
        sharded.to_grid(),
        pre_fault,
        "aborted coupled step must leave every shard at the pre-step state"
    );

    // A poisoned job refuses further coupled steps with the same typed
    // error until healed.
    assert_eq!(
        sharded.try_step().err().unwrap(),
        ShardError::Session(SessionError::Poisoned { session: victim })
    );
    assert_eq!(sharded.steps(), 1);

    // heal() resumes in place: the retried step and everything after
    // match the solo oracle bit-for-bit.
    sharded.heal();
    assert_eq!(sharded.shard_error(victim), None);
    sharded.step_n(2);
    solo.step_n(2);
    assert_eq!(
        sharded.to_grid(),
        solo.to_grid(),
        "healed job must resume bit-identically to the solo oracle"
    );
}
