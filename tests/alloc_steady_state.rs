//! Zero-allocation steady state: after the first iteration warms the
//! halo-padded ping-pong buffers and per-worker scratch, additional
//! executor steps must perform **zero** heap allocations — including the
//! boundary mirror and the guided work scheduler (whose claim cursor
//! lives on the dispatching stack).
//!
//! Methodology: a counting global allocator tallies every allocation in
//! this test binary. A run with `N` iterations and a run with `1`
//! iteration differ only in `N − 1` extra steady-state steps (plan,
//! buffers, and finalization are identical), so their allocation counts
//! must be exactly equal.

use sparstencil::exec::run;
use sparstencil::grid::Grid;
use sparstencil::plan::{compile, Options};
use sparstencil::session::{Batch, EngineBackend, Simulation};
use sparstencil::stencil::StencilKernel;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::SeqCst);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::SeqCst);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

fn allocations_for_run(
    plan: &sparstencil::plan::CompiledStencil<f32>,
    input: &Grid<f32>,
    iters: usize,
) -> u64 {
    let before = ALLOCATIONS.load(Ordering::SeqCst);
    let (out, stats) = run(plan, input, iters);
    let after = ALLOCATIONS.load(Ordering::SeqCst);
    // Keep the results alive past the measurement and sanity-check them
    // so the runs cannot be optimized away.
    assert_eq!(out.shape(), input.shape());
    assert_eq!(stats.iters, iters);
    after - before
}

fn assert_zero_steady_state_allocs(k: &StencilKernel, shape: [usize; 3], opts: &Options) {
    let plan = compile::<f32>(k, shape, opts).unwrap();
    let input = Grid::<f32>::smooth_random(k.dims(), shape);

    // Warm up process-global state (thread pool, lazy runtime init).
    let _ = run(&plan, &input, 2);

    let one = allocations_for_run(&plan, &input, 1);
    let many = allocations_for_run(&plan, &input, 6);
    assert!(one > 0, "run setup must allocate the arena");
    assert_eq!(
        many,
        one,
        "{}: steps 2..6 allocated {} time(s); steady-state steps must not \
         allocate at all",
        k.name(),
        many - one,
    );
}

/// The session API proper: after construction and one warm-up step,
/// repeated `step()`/`step_n()` calls on a live [`Simulation`] — and
/// `field()` observation, `load()` reuse, and `reset()` between them —
/// must perform zero heap allocations.
#[test]
fn zero_allocations_across_session_steps() {
    let opts = Options {
        layout: Some((4, 4)),
        ..Options::default()
    };
    let k = StencilKernel::box2d9p();
    let shape = [1, 50, 50];
    let plan = compile::<f32>(&k, shape, &opts).unwrap();
    let input = Grid::<f32>::smooth_random(2, shape);
    let other = Grid::<f32>::from_fn_3d(2, shape, |_, y, x| ((y + 2 * x) % 9) as f32 / 9.0);

    // Warm up process-global state (thread pool, lazy runtime init).
    let _ = run(&plan, &input, 2);

    let mut sim = Simulation::new(EngineBackend::new(&plan, &input));
    sim.step(); // arena warm-up step

    // Warm the caller-held checkpoint: the first fill allocates its
    // buffer, every refill below must reuse it.
    let mut ck = sparstencil::session::Checkpoint::new();
    sim.checkpoint_into(&mut ck).unwrap();
    let mut checksum = 0.0f64;

    let before = ALLOCATIONS.load(Ordering::SeqCst);
    for _ in 0..5 {
        sim.step();
        checksum += sim.field().get(0, 25, 25) as f64;
    }
    sim.step_n(5);
    // Checkpoint/rollback cycles in steady state: refill the warm
    // checkpoint, diverge, restore, re-step — all buffer reuse.
    sim.checkpoint_into(&mut ck).unwrap();
    sim.step_n(3);
    sim.restore(&ck).unwrap();
    sim.step_n(3);
    sim.reset();
    sim.step_n(2);
    sim.load(&other);
    sim.step_n(3);
    checksum += sim.field().get(0, 10, 10) as f64;
    let after = ALLOCATIONS.load(Ordering::SeqCst);

    assert!(checksum.is_finite());
    assert_eq!(
        after - before,
        0,
        "steady-state session steps (incl. field/load/reset) must not allocate"
    );
}

/// Batched stepping: after construction and one warm-up `step_all`,
/// repeated `step_all()`/`step_all_n()` over many sessions — plus
/// per-session `field()` observation, `load()` reuse, and `reset()` —
/// must perform zero heap allocations. This pins the reusable
/// buffer-binding table (refilled each step) and the shared lane
/// scratch alongside the per-session ping-pong buffers.
#[test]
fn zero_allocations_across_batch_steps() {
    let opts = Options {
        layout: Some((4, 4)),
        ..Options::default()
    };
    let k = StencilKernel::box3d27p();
    let shape = [10, 20, 20];
    let plan = compile::<f32>(&k, shape, &opts).unwrap();
    let inputs: Vec<Grid<f32>> = (0..3)
        .map(|s| {
            Grid::<f32>::from_fn_3d(3, shape, |z, y, x| {
                ((z + 2 * y + 3 * x + s) % 7) as f32 / 7.0
            })
        })
        .collect();
    let other = Grid::<f32>::from_fn_3d(3, shape, |z, y, x| ((z + y + x) % 5) as f32 / 5.0);

    // Warm up process-global state (thread pool, lazy runtime init).
    let _ = run(&plan, &inputs[0], 2);

    let mut batch = Batch::new(&plan, &inputs);
    batch.step_all(); // arena warm-up step

    // Warm a caller-held member checkpoint for the rollback cycle below.
    let mut ck = sparstencil::session::Checkpoint::new();
    batch.checkpoint_into(1, &mut ck);
    let mut checksum = 0.0f64;

    let before = ALLOCATIONS.load(Ordering::SeqCst);
    for _ in 0..4 {
        batch.step_all();
        checksum += batch.field(1).get(5, 10, 10) as f64;
    }
    batch.step_all_n(3);
    // Member checkpoint/rollback in steady state: refill, diverge,
    // restore — buffer reuse only.
    batch.checkpoint_into(1, &mut ck);
    batch.step_all();
    batch.restore(1, &ck).unwrap();
    batch.session_mut(1).step();
    // Degraded mode must stay allocation-free too: quarantine one
    // member (its claims drain unexecuted) and keep stepping.
    batch.quarantine(0);
    batch.step_all_n(2);
    batch.load(0, &other); // recovery path, also allocation-free
    batch.load(2, &other);
    batch.step_all_n(2);
    batch.reset();
    batch.step_all();
    checksum += batch.field(2).get(3, 7, 7) as f64;
    let after = ALLOCATIONS.load(Ordering::SeqCst);

    assert!(checksum.is_finite());
    assert_eq!(
        after - before,
        0,
        "steady-state batch steps (incl. field/load/reset) must not allocate"
    );
}

/// Membership churn pays its allocations up front: `admit` may allocate
/// (new member buffers, work-queue re-tag), `retire` never does, and
/// once the churned batch has taken one warm-up step the steady state
/// is allocation-free again — including the SKIP path for a paused
/// member.
#[test]
fn zero_allocations_after_membership_churn() {
    let opts = Options {
        layout: Some((4, 4)),
        ..Options::default()
    };
    let k = StencilKernel::box2d9p();
    let shape = [1, 50, 50];
    let plan = compile::<f32>(&k, shape, &opts).unwrap();
    let inputs: Vec<Grid<f32>> = (0..3)
        .map(|s| {
            Grid::<f32>::from_fn_3d(2, shape, |_, y, x| ((y * 5 + x * 3 + s) % 11) as f32 * 0.05)
        })
        .collect();

    let _ = run(&plan, &inputs[0], 2); // process-global warm-up

    let mut batch = Batch::new(&plan, &inputs[..2]);
    batch.step_all();
    // Churn: retire a member, admit two (one into the freed slot, one
    // growing the batch), then one warm-up step for the new buffers.
    batch.retire(0);
    batch.admit(&inputs[1]).unwrap();
    batch.admit(&inputs[2]).unwrap();
    batch.step_all();

    let mut checksum = 0.0f64;
    let before = ALLOCATIONS.load(Ordering::SeqCst);
    batch.step_all_n(4);
    batch.retire(1); // retire itself must not allocate
    batch.step_all_n(2);
    batch.pause(0); // SKIP-path round
    batch.step_all();
    batch.resume(0);
    batch.step_all();
    checksum += batch.field(0).get(0, 25, 25) as f64;
    let after = ALLOCATIONS.load(Ordering::SeqCst);

    assert!(checksum.is_finite());
    assert_eq!(
        after - before,
        0,
        "steady-state steps after churn (incl. retire/pause/resume) must not allocate"
    );
}

/// The serving supervisor inherits the discipline: once every tenant's
/// checkpoint ring is warm, a supervised round — due-checkpoint
/// refills, budget/backoff gating, the timed `step_all`, the latency
/// record — performs zero heap allocations.
#[test]
fn zero_allocations_across_supervised_rounds() {
    use sparstencil_serve::{ServePolicy, SessionManager};

    let opts = Options {
        layout: Some((4, 4)),
        ..Options::default()
    };
    let k = StencilKernel::box2d9p();
    let shape = [1, 50, 50];
    let plan = compile::<f32>(&k, shape, &opts).unwrap();
    let inputs: Vec<Grid<f32>> = (0..3)
        .map(|s| Grid::<f32>::from_fn_3d(2, shape, |_, y, x| ((y * 7 + x + s) % 13) as f32 * 0.04))
        .collect();

    let _ = run(&plan, &inputs[0], 2); // process-global warm-up

    let policy = ServePolicy {
        checkpoint_every: 1,
        checkpoint_ring: 2,
        ..ServePolicy::default()
    };
    let mut mgr = SessionManager::new(&plan, policy);
    let budgeted = mgr.admit(&inputs[0]).unwrap();
    for g in &inputs[1..] {
        mgr.admit(g).unwrap();
    }
    // Warm-up: fill every ring (2 snapshots at 1-step cadence) plus the
    // batch arena, and park one tenant so the gate path is exercised.
    for _ in 0..4 {
        mgr.step();
    }
    mgr.set_step_budget(budgeted, Some(5)).unwrap();
    mgr.step();
    mgr.drain_events(); // return the event queue's buffer to empty-with-capacity
    let mut checksum = 0.0f64;

    let before = ALLOCATIONS.load(Ordering::SeqCst);
    for _ in 0..5 {
        mgr.step();
        checksum += mgr.latency().mean().as_nanos() as f64;
    }
    let after = ALLOCATIONS.load(Ordering::SeqCst);

    assert!(checksum.is_finite());
    assert_eq!(
        after - before,
        0,
        "warm supervised rounds (checkpoints, gating, timing) must not allocate"
    );
}

#[test]
fn zero_steady_state_allocations_2d() {
    assert_zero_steady_state_allocs(&StencilKernel::box2d9p(), [1, 50, 50], &Options::default());
}

#[test]
fn zero_steady_state_allocations_2d_edge_tiles() {
    let opts = Options {
        layout: Some((5, 3)),
        ..Options::default()
    };
    assert_zero_steady_state_allocs(&StencilKernel::box2d49p(), [1, 45, 47], &opts);
}

#[test]
fn zero_steady_state_allocations_3d() {
    let opts = Options {
        layout: Some((4, 4)),
        ..Options::default()
    };
    assert_zero_steady_state_allocs(&StencilKernel::box3d27p(), [10, 20, 20], &opts);
}

#[test]
fn zero_steady_state_allocations_padded_asymmetric() {
    // Misaligned layout on an asymmetric grid: ghost tiles on both axes,
    // so every step runs the ghost scatter plus the boundary mirror —
    // the padded path proper must also be allocation-free.
    let opts = Options {
        layout: Some((5, 3)),
        ..Options::default()
    };
    assert_zero_steady_state_allocs(&StencilKernel::star2d13p(), [1, 37, 53], &opts);
}

#[test]
fn zero_steady_state_allocations_temporal_fusion() {
    let fused = StencilKernel::heat2d().temporal_fusion(3);
    let opts = Options {
        layout: Some((4, 4)),
        ..Options::default()
    };
    assert_zero_steady_state_allocs(&fused, [1, 40, 40], &opts);
}

/// The sharded facade inherits the discipline: once a
/// [`sparstencil_shard::ShardedSimulation`]'s arena and halo-exchange
/// counters are warm, coupled steps — compute, mirror, AND cross-shard
/// halo copies, all inside one parallel region — plus seamless field
/// reads and checkpoint/rollback cycles perform zero heap allocations.
#[test]
fn zero_allocations_across_sharded_steps() {
    use sparstencil_shard::{ShardCheckpoint, ShardedSimulation};

    let opts = Options {
        layout: Some((4, 4)),
        ..Options::default()
    };
    let k = StencilKernel::box3d27p();
    let shape = [10, 20, 20];
    let plan = compile::<f32>(&k, shape, &opts).unwrap();
    let input =
        Grid::<f32>::from_fn_3d(3, shape, |z, y, x| ((z * 5 + y * 3 + x) % 11) as f32 * 0.05);

    // Warm up process-global state (thread pool, lazy runtime init).
    let _ = run(&plan, &input, 2);

    let mut sharded = ShardedSimulation::<f32>::new(&k, &input, &opts, 4);
    sharded.step(); // arena warm-up step (counters, lane scratch)

    // Warm the caller-held checkpoint: first fill allocates, refills
    // below must reuse.
    let mut ck = ShardCheckpoint::new();
    sharded.checkpoint_into(&mut ck);
    let mut checksum = 0.0f64;

    let before = ALLOCATIONS.load(Ordering::SeqCst);
    for _ in 0..4 {
        sharded.step();
        checksum += sharded.field().get(5, 10, 10) as f64;
    }
    sharded.step_n(3);
    // Checkpoint/rollback in steady state: refill the warm checkpoint,
    // diverge, restore, re-step — buffer reuse only.
    sharded.checkpoint_into(&mut ck);
    sharded.step_n(2);
    sharded.restore(&ck).unwrap();
    sharded.step_n(2);
    sharded.reset();
    sharded.step_n(2);
    checksum += sharded.field().get(3, 7, 7) as f64;
    let after = ALLOCATIONS.load(Ordering::SeqCst);

    assert!(checksum.is_finite());
    assert_eq!(
        after - before,
        0,
        "steady-state sharded steps (incl. halo exchange, field reads, \
         checkpoint/rollback, reset) must not allocate"
    );
}

/// A tuner-chosen plan inherits the discipline: whatever layout and
/// staging-window policy [`tune_with`] adopts (including shared-stage
/// or prefetch disabled — the executor consults the policy per work
/// item, not per allocation), steady-state steps stay allocation-free.
#[test]
fn zero_steady_state_allocations_tuned_plan() {
    use sparstencil::plan::{tune_with, TuneOpts};

    let k = StencilKernel::box2d9p();
    let shape = [1, 50, 50];
    let opts = Options::default();
    // margin 0 adopts the model argmin aggressively — the most likely
    // configuration to differ from the default plan.
    let tune_opts = TuneOpts {
        margin: 0.0,
        ..TuneOpts::default()
    };
    let (plan, choice) = tune_with::<f32>(&k, shape, &opts, &tune_opts).unwrap();
    assert_eq!(choice.fusion, 1);
    let input = Grid::<f32>::smooth_random(k.dims(), shape);

    // Warm up process-global state (thread pool, lazy runtime init).
    let _ = run(&plan, &input, 2);

    let one = allocations_for_run(&plan, &input, 1);
    let many = allocations_for_run(&plan, &input, 6);
    assert!(one > 0, "run setup must allocate the arena");
    assert_eq!(
        many, one,
        "tuned plan (layout {:?} -> {:?}, policy {:?}): steady-state steps \
         must not allocate",
        choice.default_layout, choice.layout, choice.policy,
    );
}

#[test]
fn zero_steady_state_allocations_forced_scalar() {
    // Kernel dispatch must not change allocation behavior: the scalar
    // blocked path (what non-AVX2 hardware runs) shares the steady-state
    // buffers with the vector path. The guard restores the
    // process-global flag even if the assert fires.
    struct Restore;
    impl Drop for Restore {
        fn drop(&mut self) {
            sparstencil::exec::simd::force_scalar(false);
        }
    }
    let _restore = Restore;
    sparstencil::exec::simd::force_scalar(true);
    let opts = Options {
        layout: Some((4, 4)),
        ..Options::default()
    };
    assert_zero_steady_state_allocs(&StencilKernel::box3d27p(), [10, 20, 20], &opts);
}
