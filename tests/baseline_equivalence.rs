//! Baselines compute the same stencils: every mapping is performance
//! engineering, not arithmetic — results must agree with SparStencil's.

use sparstencil::pipeline::Executor;
use sparstencil::plan::Options;
use sparstencil::prelude::{Grid, Precision, StencilKernel};
use sparstencil_baselines::all_baselines;
use sparstencil_mat::half::verify_tolerance;
use sparstencil_tcu::GpuConfig;

#[test]
fn all_baselines_agree_with_sparstencil() {
    let kernel = StencilKernel::box2d9p();
    let shape = [1, 44, 44];
    let input = Grid::<f32>::smooth_random(2, shape);

    let spar = Executor::<f32>::new(
        &kernel,
        shape,
        &Options {
            layout: Some((4, 4)),
            ..Options::default()
        },
    )
    .unwrap();
    let (spar_out, _) = spar.run(&input, 1);
    let spar64 = Grid::<f64>::from_fn_3d(2, shape, |z, y, x| spar_out.get(z, y, x) as f64);

    for baseline in all_baselines() {
        let out = baseline.execute(&kernel, &input, 1);
        let out64 = Grid::<f64>::from_fn_3d(2, shape, |z, y, x| out.get(z, y, x) as f64);
        let diff = out64.max_rel_diff_interior(&spar64, &kernel);
        // Both sides carry FP16 rounding; allow twice the one-sided band.
        assert!(
            diff <= 2.0 * verify_tolerance(Precision::Fp16),
            "{} diverges from SparStencil by {diff:.3e}",
            baseline.name()
        );
    }
}

#[test]
fn baseline_models_cover_the_benchmark_matrix() {
    let gpu = GpuConfig::a100();
    let kernels = [
        StencilKernel::heat2d(),
        StencilKernel::box2d49p(),
        StencilKernel::heat3d(),
        StencilKernel::heat1d(),
    ];
    for b in all_baselines() {
        for k in &kernels {
            let shape = match k.dims() {
                1 => [1, 1, 100_000],
                2 => [1, 1030, 1030],
                _ => [130, 130, 130],
            };
            let s = b.model(k, shape, 10, Precision::Fp16, &gpu);
            let stats = s.unwrap_or_else(|| panic!("{} refused {}", b.name(), k.name()));
            assert!(
                stats.gstencil_per_sec.is_finite() && stats.gstencil_per_sec > 0.0,
                "{} on {}: bad throughput",
                b.name(),
                k.name()
            );
            assert!(stats.total_seconds > 0.0);
        }
    }
}

#[test]
fn fp64_support_matrix_matches_paper() {
    // Table 3 lists AMOS, cuDNN, DRStencil, ConvStencil (and SparStencil);
    // TCStencil is absent — it is FP16-only.
    let gpu = GpuConfig::a100();
    let k = StencilKernel::heat2d();
    for b in all_baselines() {
        let s = b.model(&k, [1, 1030, 1030], 5, Precision::Fp64, &gpu);
        if b.name() == "TCStencil" {
            assert!(s.is_none(), "TCStencil must refuse FP64");
        } else {
            assert!(s.is_some(), "{} must support FP64", b.name());
        }
    }
}

#[test]
fn headline_orderings_hold_at_paper_scale() {
    // The reproduction's "shape" claims, pinned as tests:
    // on Box-2D49P at 10240² FP16, SparStencil beats ConvStencil, which
    // beats TCStencil and cuDNN; AMOS is last among TCU systems.
    let gpu = GpuConfig::a100();
    let kernel = StencilKernel::box2d49p();
    let shape = [1, 10_246, 10_246];
    let iters = 100;

    let get = |name: &str| -> f64 {
        all_baselines()
            .into_iter()
            .find(|b| b.name() == name)
            .unwrap()
            .model(&kernel, shape, iters, Precision::Fp16, &gpu)
            .unwrap()
            .gstencil_per_sec
    };
    let spar = {
        let exec = Executor::<f32>::new(
            &kernel,
            [1, 262, 262],
            &Options {
                gpu: gpu.clone(),
                ..Options::default()
            },
        )
        .unwrap();
        exec.run_modelled(shape, iters).gstencil_per_sec
    };

    let conv = get("ConvStencil");
    let tc = get("TCStencil");
    let cudnn = get("cuDNN");
    let amos = get("AMOS");
    let dr = get("DRStencil");

    assert!(
        spar > conv,
        "SparStencil {spar:.1} vs ConvStencil {conv:.1}"
    );
    assert!(conv > tc, "ConvStencil {conv:.1} vs TCStencil {tc:.1}");
    assert!(tc > cudnn, "TCStencil {tc:.1} vs cuDNN {cudnn:.1}");
    assert!(cudnn > amos, "cuDNN {cudnn:.1} vs AMOS {amos:.1}");
    assert!(spar > dr, "SparStencil {spar:.1} vs DRStencil {dr:.1}");
    // Abstract headline band: 2.89–60.35× over cuDNN.
    let vs_cudnn = spar / cudnn;
    assert!(
        vs_cudnn > 2.89,
        "speedup vs cuDNN {vs_cudnn:.2} below paper band"
    );
}

#[test]
fn fp64_table3_ordering() {
    let gpu = GpuConfig::a100();
    let kernel = StencilKernel::box2d49p();
    let shape = [1, 10_246, 10_246];
    let get = |name: &str| -> f64 {
        all_baselines()
            .into_iter()
            .find(|b| b.name() == name)
            .unwrap()
            .model(&kernel, shape, 50, Precision::Fp64, &gpu)
            .unwrap()
            .gflops_per_sec
    };
    let spar = {
        let exec = Executor::<f64>::new(
            &kernel,
            [1, 262, 262],
            &Options {
                precision: Precision::Fp64,
                mode: sparstencil::layout::ExecMode::DenseTcu,
                gpu: gpu.clone(),
                ..Options::default()
            },
        )
        .unwrap();
        exec.run_modelled(shape, 50).gflops_per_sec
    };
    assert!(spar >= get("ConvStencil"));
    assert!(spar > get("DRStencil"));
    assert!(spar > get("cuDNN"));
    assert!(get("cuDNN") > get("AMOS"));
}
