//! The analytic model and the functional executor must agree exactly:
//! Equation-9 op counts, traffic volumes, and overhead decay.

use sparstencil::exec;
use sparstencil::layout::ExecMode;
use sparstencil::pipeline::Executor;
use sparstencil::plan::{compile, Options};
use sparstencil::prelude::{Grid, StencilKernel};

#[test]
fn counted_equals_modelled_across_kernels_and_layouts() {
    for kernel in [
        StencilKernel::heat2d(),
        StencilKernel::box2d49p(),
        StencilKernel::star2d13p(),
    ] {
        for layout in [(2, 2), (4, 4), (8, 2)] {
            let shape = [1, 70, 74];
            let opts = Options {
                layout: Some(layout),
                ..Options::default()
            };
            let plan = compile::<f32>(&kernel, shape, &opts).unwrap();
            let g = Grid::<f32>::smooth_random(2, shape);
            let (_, functional) = exec::run(&plan, &g, 2);
            let modelled = exec::model_run(&plan, shape, 2);
            assert_eq!(
                functional.counters.n_mma(),
                modelled.counters.n_mma(),
                "{} {layout:?}: MMA count",
                kernel.name()
            );
            assert_eq!(
                functional.counters.global_bytes(),
                modelled.counters.global_bytes(),
                "{} {layout:?}: global traffic",
                kernel.name()
            );
            assert_eq!(
                functional.counters.shared_bytes(),
                modelled.counters.shared_bytes(),
                "{} {layout:?}: shared traffic",
                kernel.name()
            );
        }
    }
}

#[test]
fn counted_equals_modelled_3d() {
    let kernel = StencilKernel::heat3d();
    let shape = [12, 26, 26];
    let opts = Options {
        layout: Some((4, 4)),
        ..Options::default()
    };
    let plan = compile::<f32>(&kernel, shape, &opts).unwrap();
    let g = Grid::<f32>::smooth_random(3, shape);
    let (_, functional) = exec::run(&plan, &g, 1);
    let modelled = exec::model_run(&plan, shape, 1);
    assert_eq!(functional.counters.n_mma(), modelled.counters.n_mma());
    assert_eq!(functional.counters.n_mma(), plan.geom.n_mma);
}

#[test]
fn dense_mode_counts_match_too() {
    let kernel = StencilKernel::box2d9p();
    let shape = [1, 50, 50];
    let opts = Options {
        mode: ExecMode::DenseTcu,
        layout: Some((4, 2)),
        ..Options::default()
    };
    let plan = compile::<f32>(&kernel, shape, &opts).unwrap();
    let g = Grid::<f32>::smooth_random(2, shape);
    let (_, functional) = exec::run(&plan, &g, 3);
    assert_eq!(functional.counters.n_mma(), plan.geom.n_mma * 3);
    assert_eq!(functional.counters.sparse_mma_count, 0);
}

#[test]
fn sparse_mode_halves_k_strips_vs_dense() {
    // The mechanism behind the paper's "+PIT" gain: at the same layout,
    // the sparse plan issues at most ~half the fragment ops of the dense
    // plan (compressed depth covers 2× columns per op), modulo the
    // conversion's zero-column padding.
    let kernel = StencilKernel::box2d49p();
    let shape = [1, 70, 70];
    let dense = compile::<f32>(
        &kernel,
        shape,
        &Options {
            mode: ExecMode::DenseTcu,
            layout: Some((4, 4)),
            ..Options::default()
        },
    )
    .unwrap();
    let sparse = compile::<f32>(
        &kernel,
        shape,
        &Options {
            layout: Some((4, 4)),
            ..Options::default()
        },
    )
    .unwrap();
    let ratio = dense.geom.n_mma as f64 / sparse.geom.n_mma as f64;
    assert!(
        (1.4..=2.2).contains(&ratio),
        "dense/sparse op ratio {ratio:.2}"
    );
}

#[test]
fn modelled_time_scales_linearly_with_iterations() {
    let kernel = StencilKernel::heat2d();
    let exec = Executor::<f32>::new(&kernel, [1, 130, 130], &Options::default()).unwrap();
    let one = exec.run_modelled([1, 1030, 1030], 1);
    let hundred = exec.run_modelled([1, 1030, 1030], 100);
    let ratio = hundred.total_seconds / one.total_seconds;
    assert!(
        (99.0..=101.0).contains(&ratio),
        "iteration scaling {ratio:.2}"
    );
}

#[test]
fn prep_overhead_monotonically_decays() {
    let exec = Executor::<f32>::new(
        &StencilKernel::box2d49p(),
        [1, 130, 130],
        &Options::default(),
    )
    .unwrap();
    let profile = exec.overhead_profile(&[1, 10, 100, 1000, 10000]);
    let totals: Vec<f64> = profile
        .iter()
        .map(|p| p.transform_pct + p.metadata_pct + p.lut_pct)
        .collect();
    for w in totals.windows(2) {
        assert!(w[1] <= w[0] + 1e-9, "overhead must decay: {totals:?}");
    }
    assert!(
        totals[0] > totals[4] * 10.0,
        "decay too shallow: {totals:?}"
    );
}

#[test]
fn cuda_source_emitted_for_all_modes() {
    let kernel = StencilKernel::box2d9p();
    for (mode, needle) in [
        (ExecMode::SparseTcu, "mma.sp.sync"),
        (ExecMode::DenseTcu, "mma.sync"),
    ] {
        let exec = Executor::<f32>::new(
            &kernel,
            [1, 50, 50],
            &Options {
                mode,
                layout: Some((4, 2)),
                ..Options::default()
            },
        )
        .unwrap();
        let src = exec.cuda_source();
        assert!(src.contains(needle), "{mode:?}: missing {needle}");
        assert!(src.contains("GATHER_LUT"));
    }
}
