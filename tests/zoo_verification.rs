//! All 79 zoo kernels compile and verify through the full SparStencil
//! pipeline — the functional backbone of the Figure-10 experiment.

use sparstencil::pipeline::Executor;
use sparstencil::plan::Options;
use sparstencil::prelude::{Grid, StencilKernel};
use sparstencil_mat::half::verify_tolerance;
use sparstencil_zoo::{all, Domain};

fn shape_for(kernel: &StencilKernel) -> [usize; 3] {
    let e = kernel.extent();
    match kernel.dims() {
        1 => [1, 1, 400 + e[2]],
        2 => [1, 36 + e[1], 40 + e[2]],
        _ => [10 + e[0], 16 + e[1], 16 + e[2]],
    }
}

/// Tolerance scaled by the kernel's ℓ1 mass (zoo weights are not all
/// normalized; FP16 error is relative to operand magnitude).
fn tolerance(kernel: &StencilKernel) -> f64 {
    let mass: f64 = kernel.weights().iter().map(|w| w.abs()).sum();
    verify_tolerance(sparstencil_mat::half::Precision::Fp16) * mass.max(1.0)
}

#[test]
fn all_79_kernels_verify_sparse() {
    let mut failures = Vec::new();
    for entry in all() {
        let kernel = entry.kernel();
        let shape = shape_for(&kernel);
        let opts = Options {
            layout: Some((4, if kernel.dims() >= 2 { 4 } else { 1 })),
            ..Options::default()
        };
        let exec = match Executor::<f32>::new(&kernel, shape, &opts) {
            Ok(e) => e,
            Err(e) => {
                failures.push(format!("{}: compile error {e}", entry.name));
                continue;
            }
        };
        let input = Grid::<f32>::smooth_random(kernel.dims(), shape);
        let err = exec.verify(&input, 1);
        if err > tolerance(&kernel) {
            failures.push(format!(
                "{}: rel err {err:.3e} > {:.1e}",
                entry.name,
                tolerance(&kernel)
            ));
        }
    }
    assert!(
        failures.is_empty(),
        "zoo failures:\n{}",
        failures.join("\n")
    );
}

#[test]
fn layout_exploration_succeeds_for_every_domain_representative() {
    // Full layout exploration (not a fixed layout) for one kernel per
    // domain — exercises the analytic model across pattern families.
    for domain in Domain::all() {
        let entry = &sparstencil_zoo::by_domain(domain)[0];
        let kernel = entry.kernel();
        let shape = shape_for(&kernel);
        let exec = Executor::<f32>::new(&kernel, shape, &Options::default())
            .unwrap_or_else(|e| panic!("{}: {e}", entry.name));
        let plan = exec.plan();
        assert!(plan.plan.r1 >= 1 && plan.plan.r2 >= 1);
        assert_eq!(plan.geom.k_logical % plan.frag.k, 0);
    }
}

#[test]
fn every_kernel_produces_two_four_compatible_operands() {
    use sparstencil_mat::BitMask;
    for entry in all() {
        let kernel = entry.kernel();
        let shape = shape_for(&kernel);
        let opts = Options {
            layout: Some((2, if kernel.dims() >= 2 { 4 } else { 1 })),
            ..Options::default()
        };
        let exec = Executor::<f32>::new(&kernel, shape, &opts)
            .unwrap_or_else(|e| panic!("{}: {e}", entry.name));
        for slice in &exec.plan().slices {
            for strip_row in &slice.strips {
                for op in strip_row {
                    if let sparstencil::plan::Operand::Sparse(m) = op {
                        assert!(
                            BitMask::from_matrix(&m.decompress()).is_two_four_compatible(),
                            "{}: operand violates 2:4",
                            entry.name
                        );
                    }
                }
            }
        }
    }
}
