//! Batched multi-session execution semantics: a [`Batch`] stepping N
//! sessions through one guided work queue must be **indistinguishable**,
//! per session, from N solo sessions — bit-identical grids *and*
//! counters, at every lane count — while rejecting inputs that cannot
//! share the batch's plan.

use sparstencil::grid::Grid;
use sparstencil::pipeline::Executor;
use sparstencil::plan::Options;
use sparstencil::session::Batch;
use sparstencil::stencil::StencilKernel;

fn opts_for(k: &StencilKernel) -> Options {
    if k.dims() == 3 {
        Options {
            layout: Some((4, 4)),
            ..Options::default()
        }
    } else {
        Options::default()
    }
}

/// Distinct deterministic inputs, one per session.
fn inputs_for(k: &StencilKernel, shape: [usize; 3], n: usize) -> Vec<Grid<f32>> {
    (0..n)
        .map(|s| {
            Grid::<f32>::from_fn_3d(k.dims(), shape, |z, y, x| {
                ((z * 11 + y * 5 + x * 3 + s * 17) % 23) as f32 * 0.04
            })
        })
        .collect()
}

/// The batch-vs-solo identity: `step_all_n(iters)` over N sessions must
/// leave every session bit-identical (grid and counters) to a solo
/// session stepped the same number of times over the same input.
fn assert_batch_identity(k: &StencilKernel, shape: [usize; 3], n_sessions: usize, iters: usize) {
    let exec = Executor::<f32>::new(k, shape, &opts_for(k)).unwrap();
    let inputs = inputs_for(k, shape, n_sessions);

    let mut batch = exec.batch(&inputs);
    assert_eq!(batch.sessions(), n_sessions);
    batch.step_all_n(iters);

    for (i, input) in inputs.iter().enumerate() {
        let mut solo = exec.session(input);
        solo.step_n(iters);
        assert_eq!(batch.steps(i), iters);
        assert_eq!(
            batch.to_grid(i),
            solo.to_grid(),
            "{}: batched session {i} must equal its solo twin",
            k.name()
        );
        assert_eq!(
            batch.stats(i).counters,
            solo.stats().unwrap().counters,
            "{}: session {i} counters must match",
            k.name()
        );
    }
}

#[test]
fn batch_of_eight_matches_solo_2d() {
    assert_batch_identity(&StencilKernel::box2d9p(), [1, 44, 48], 8, 3);
}

#[test]
fn batch_of_eight_matches_solo_3d_sliding_window() {
    // 3D: multi-plane staging windows, so z-sliding runs are real and
    // ring reuse must survive lanes hopping between sessions.
    assert_batch_identity(&StencilKernel::box3d27p(), [12, 20, 20], 8, 2);
}

#[test]
fn batch_matches_solo_star_and_fused_kernels() {
    assert_batch_identity(&StencilKernel::star2d13p(), [1, 37, 43], 4, 2);
    let fused = StencilKernel::heat2d().temporal_fusion(3);
    assert_batch_identity(&fused, [1, 40, 40], 3, 2);
}

#[test]
fn batch_results_are_lane_count_invariant() {
    let k = StencilKernel::box3d27p();
    let shape = [10, 20, 20];
    let exec = Executor::<f32>::new(&k, shape, &opts_for(&k)).unwrap();
    let inputs = inputs_for(&k, shape, 5);

    let mut reference: Option<Vec<Grid<f32>>> = None;
    for lanes in [1usize, 2, 5] {
        let mut batch = exec.batch_with_parallelism(&inputs, lanes);
        batch.step_all_n(3);
        let grids: Vec<Grid<f32>> = (0..inputs.len()).map(|i| batch.to_grid(i)).collect();
        match &reference {
            None => reference = Some(grids),
            Some(want) => assert_eq!(&grids, want, "lanes={lanes}"),
        }
    }
}

#[test]
fn batch_load_and_reset_reuse_members_independently() {
    let k = StencilKernel::box2d9p();
    let shape = [1, 44, 48];
    let exec = Executor::<f32>::new(&k, shape, &opts_for(&k)).unwrap();
    let inputs = inputs_for(&k, shape, 3);
    let fresh = Grid::<f32>::from_fn_3d(2, shape, |_, y, x| ((y * 13 + x * 7) % 19) as f32 / 19.0);

    let mut batch = exec.batch(&inputs);
    batch.step_all_n(4);

    // Reload one member; the others keep their state and step counts.
    batch.load(1, &fresh);
    assert_eq!(batch.steps(1), 0);
    assert_eq!(batch.steps(0), 4);
    batch.step_all_n(2);

    let (want_0, _) = exec.run(&inputs[0], 6);
    let (want_1, want_1_stats) = exec.run(&fresh, 2);
    assert_eq!(batch.to_grid(0), want_0, "untouched member keeps going");
    assert_eq!(batch.to_grid(1), want_1, "reloaded member starts over");
    assert_eq!(batch.stats(1).counters, want_1_stats.counters);

    // A full reset rewinds every member to its last-loaded input.
    batch.reset();
    assert_eq!(batch.steps(0), 0);
    batch.step_all_n(2);
    let (want_0_again, _) = exec.run(&inputs[0], 2);
    assert_eq!(batch.to_grid(0), want_0_again);
    assert_eq!(batch.to_grid(1), want_1);
}

#[test]
fn batch_session_view_matches_solo_catchup() {
    // Stepping one member ahead through `session_mut` is the same solo
    // hot path: after mixed batch/solo stepping, each member equals a
    // solo run of its total step count.
    let k = StencilKernel::box3d27p();
    let shape = [10, 20, 20];
    let exec = Executor::<f32>::new(&k, shape, &opts_for(&k)).unwrap();
    let inputs = inputs_for(&k, shape, 2);

    let mut batch = exec.batch(&inputs);
    batch.step_all(); // everyone: 1
    batch.session_mut(0).step_n(2); // member 0: 3
    batch.step_all(); // 4 / 2

    for (i, want_steps) in [(0usize, 4usize), (1, 2)] {
        let (want, want_stats) = exec.run(&inputs[i], want_steps);
        assert_eq!(batch.steps(i), want_steps);
        assert_eq!(batch.to_grid(i), want, "member {i}");
        assert_eq!(batch.stats(i).counters, want_stats.counters);
    }
}

#[test]
fn batch_field_views_are_live() {
    let k = StencilKernel::heat2d();
    let shape = [1, 40, 40];
    let exec = Executor::<f32>::new(&k, shape, &opts_for(&k)).unwrap();
    let inputs = inputs_for(&k, shape, 2);
    let mut batch = exec.batch(&inputs);
    batch.step_all_n(2);
    let (want, _) = exec.run(&inputs[1], 2);
    assert_eq!(batch.field(1).get(0, 17, 23), want.get(0, 17, 23));
    assert_eq!(batch.field(1).shape(), shape);
}

#[test]
fn owned_batch_is_self_contained() {
    let k = StencilKernel::heat2d();
    let shape = [1, 36, 36];
    let exec = Executor::<f32>::new(&k, shape, &opts_for(&k)).unwrap();
    let inputs = inputs_for(&k, shape, 2);
    let wants: Vec<Grid<f32>> = inputs.iter().map(|i| exec.run(i, 2).0).collect();

    let mut batch: Batch<'static, f32> = Batch::owned(exec.plan().clone(), &inputs);
    batch.step_all_n(2);
    for (i, want) in wants.iter().enumerate() {
        assert_eq!(&batch.to_grid(i), want);
    }
}

/// Membership churn: `admit` and `retire` must not disturb survivors.
/// Admit a member mid-flight, retire another (swap-remove moves the
/// last slot down), keep stepping — every member stays bit-identical to
/// a solo twin of its own total step count.
#[test]
fn admit_and_retire_preserve_survivor_identity() {
    let k = StencilKernel::box3d27p();
    let shape = [10, 20, 20];
    let exec = Executor::<f32>::new(&k, shape, &opts_for(&k)).unwrap();
    let inputs = inputs_for(&k, shape, 4);

    let mut batch = exec.batch(&inputs[..3]);
    batch.step_all_n(2);

    // Admit the 4th input two steps late.
    let slot = batch.admit(&inputs[3]).unwrap();
    assert_eq!(slot, 3);
    assert_eq!(batch.sessions(), 4);
    assert_eq!(batch.steps(3), 0);
    batch.step_all_n(2);

    // Retire slot 1: the member formerly in the last slot (input 3)
    // swaps down into slot 1; slots 0 and 2 are untouched.
    batch.retire(1);
    assert_eq!(batch.sessions(), 3);
    batch.step_all_n(2);

    // slot → (input index, total steps) after the churn.
    for (slot, input_idx, want_steps) in [(0usize, 0usize, 6usize), (1, 3, 4), (2, 2, 6)] {
        let mut solo = exec.session(&inputs[input_idx]);
        solo.step_n(want_steps);
        assert_eq!(batch.steps(slot), want_steps, "slot {slot} step count");
        assert_eq!(
            batch.to_grid(slot),
            solo.to_grid(),
            "slot {slot} (input {input_idx}) must equal its solo twin through churn"
        );
        assert_eq!(batch.stats(slot).counters, solo.stats().unwrap().counters);
    }
}

/// Retiring down to zero members leaves a valid (if idle) batch:
/// `step_all` is a no-op, and a later `admit` brings it back to life
/// with full solo identity.
#[test]
fn retire_to_empty_then_admit_restarts() {
    let k = StencilKernel::box2d9p();
    let shape = [1, 44, 48];
    let exec = Executor::<f32>::new(&k, shape, &opts_for(&k)).unwrap();
    let inputs = inputs_for(&k, shape, 2);

    let mut batch = exec.batch(&inputs[..1]);
    batch.step_all_n(2);
    batch.retire(0);
    assert_eq!(batch.sessions(), 0);
    batch.step_all(); // no members: nothing to do, nothing to panic

    let slot = batch.admit(&inputs[1]).unwrap();
    assert_eq!(slot, 0);
    batch.step_all_n(3);
    let (want, _) = exec.run(&inputs[1], 3);
    assert_eq!(batch.to_grid(0), want);
}

/// `admit` validates like `try_new`: wrong shape and non-finite inputs
/// come back as typed errors naming the would-be slot, and the batch is
/// unchanged.
#[test]
fn admit_rejects_bad_inputs_with_typed_errors() {
    use sparstencil::session::SessionError;

    let k = StencilKernel::box2d9p();
    let shape = [1, 44, 48];
    let exec = Executor::<f32>::new(&k, shape, &opts_for(&k)).unwrap();
    let inputs = inputs_for(&k, shape, 2);
    let mut batch = exec.batch(&inputs);

    let wrong = Grid::<f32>::smooth_random(2, [1, 44, 44]);
    match batch.admit(&wrong) {
        Err(SessionError::ShapeMismatch { .. }) => {}
        other => panic!("expected ShapeMismatch, got {other:?}"),
    }

    let mut nan = inputs[0].clone();
    nan.as_mut_slice()[100] = f32::NAN;
    match batch.admit(&nan) {
        Err(SessionError::NonFiniteInput { session: 2, .. }) => {}
        other => panic!("expected NonFiniteInput for slot 2, got {other:?}"),
    }
    assert_eq!(batch.sessions(), 2, "failed admits must not grow the batch");
}

/// `pause` parks a member on the SKIP path: its state is frozen
/// bit-for-bit while the others advance, and `resume` rejoins it with
/// full solo identity.
#[test]
fn pause_freezes_a_member_bit_identically() {
    let k = StencilKernel::box2d9p();
    let shape = [1, 44, 48];
    let exec = Executor::<f32>::new(&k, shape, &opts_for(&k)).unwrap();
    let inputs = inputs_for(&k, shape, 2);
    let mut batch = exec.batch(&inputs);

    batch.step_all_n(2);
    batch.pause(1);
    assert!(batch.is_paused(1));
    assert!(!batch.is_active(1));
    let frozen = batch.to_grid(1);
    batch.step_all_n(3);
    assert_eq!(batch.steps(1), 2, "paused member must not step");
    assert_eq!(batch.to_grid(1), frozen, "paused member must not change");

    batch.resume(1);
    assert!(batch.is_active(1));
    batch.step_all();
    for (i, want_steps) in [(0usize, 6usize), (1, 3)] {
        let mut solo = exec.session(&inputs[i]);
        solo.step_n(want_steps);
        assert_eq!(batch.steps(i), want_steps);
        assert_eq!(batch.to_grid(i), solo.to_grid(), "member {i} after resume");
    }
}

/// `step_all_until` steps whole rounds while the deadline allows,
/// records one latency sample per round, and refuses to start a round
/// past the deadline.
#[test]
fn step_all_until_respects_deadline_and_records_latency() {
    use sparstencil::exec::LatencyHistogram;
    use std::time::{Duration, Instant};

    let k = StencilKernel::box2d9p();
    let shape = [1, 44, 48];
    let exec = Executor::<f32>::new(&k, shape, &opts_for(&k)).unwrap();
    let inputs = inputs_for(&k, shape, 2);
    let mut batch = exec.batch(&inputs);

    let mut hist = LatencyHistogram::new();
    let steps = batch.step_all_until(Instant::now() + Duration::from_millis(120), &mut hist);
    assert!(steps >= 1, "a future deadline admits at least one round");
    assert_eq!(hist.count(), steps as u64, "one latency sample per round");
    assert_eq!(batch.steps(0), steps);
    assert_eq!(batch.steps(1), steps);
    assert!(hist.quantile(0.5) <= hist.quantile(0.99));

    // An already-expired deadline steps nothing and records nothing.
    let before = hist.count();
    let none = batch.step_all_until(Instant::now() - Duration::from_millis(1), &mut hist);
    assert_eq!(none, 0);
    assert_eq!(hist.count(), before);

    // The rounds that did run kept solo identity.
    let mut solo = exec.session(&inputs[0]);
    solo.step_n(steps);
    assert_eq!(batch.to_grid(0), solo.to_grid());
}

#[test]
#[should_panic(expected = "differs from the compiled plan")]
fn batch_rejects_mixed_shapes() {
    let k = StencilKernel::box2d9p();
    let exec = Executor::<f32>::new(&k, [1, 44, 48], &opts_for(&k)).unwrap();
    let good = Grid::<f32>::smooth_random(2, [1, 44, 48]);
    let bad = Grid::<f32>::smooth_random(2, [1, 44, 44]);
    let _ = exec.batch(&[good, bad]);
}
