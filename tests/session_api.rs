//! Session-API semantics: a persistent [`Simulation`] must be
//! indistinguishable from the one-shot entry points — `step_n(1)` called
//! N times is bit-identical (grids *and* counters) to `run(N)`, `load()`
//! reuse across inputs matches fresh sessions, probes observe the exact
//! intermediate states, and one driver runs every [`Backend`] (engine,
//! naive, all seven baselines) interchangeably.

use sparstencil::grid::Grid;
use sparstencil::pipeline::Executor;
use sparstencil::plan::Options;
use sparstencil::session::Simulation;
use sparstencil::stencil::StencilKernel;
use sparstencil_baselines::all_baselines;
use sparstencil_mat::half::verify_tolerance;
use sparstencil_tcu::Counters;

fn opts_for(k: &StencilKernel) -> Options {
    if k.dims() == 3 {
        Options {
            layout: Some((4, 4)),
            ..Options::default()
        }
    } else {
        Options::default()
    }
}

/// The session-vs-one-shot identity, per backend flavor: N single steps
/// through a session == one `run(N)`, bit-for-bit grids and counters.
fn assert_stepwise_identity(k: &StencilKernel, shape: [usize; 3], iters: usize) {
    let exec = Executor::<f32>::new(k, shape, &opts_for(k)).unwrap();
    let input = Grid::<f32>::smooth_random(k.dims(), shape);

    for (label, mut sim, (want, want_stats)) in [
        ("engine", exec.session(&input), exec.run(&input, iters)),
        (
            "naive",
            exec.session_naive(&input),
            exec.run_naive(&input, iters),
        ),
    ] {
        for _ in 0..iters {
            sim.step();
        }
        assert_eq!(sim.steps(), iters);
        assert_eq!(
            sim.to_grid(),
            want,
            "{}/{label}: stepped grid must equal run({iters})",
            k.name()
        );
        let stats = sim.stats().expect("plan-backed backends report stats");
        assert_eq!(
            stats.counters,
            want_stats.counters,
            "{}/{label}: counters must match",
            k.name()
        );
        assert_eq!(stats.iters, want_stats.iters);
        assert_eq!(stats.total_seconds, want_stats.total_seconds);
    }
}

#[test]
fn stepwise_identity_2d() {
    assert_stepwise_identity(&StencilKernel::box2d9p(), [1, 48, 52], 4);
    assert_stepwise_identity(&StencilKernel::star2d13p(), [1, 37, 43], 3);
}

#[test]
fn stepwise_identity_3d() {
    assert_stepwise_identity(&StencilKernel::box3d27p(), [12, 20, 20], 2);
}

#[test]
fn stepwise_identity_temporal_fusion() {
    let fused = StencilKernel::heat2d().temporal_fusion(3);
    let exec = Executor::<f32>::new(
        &fused,
        [1, 40, 40],
        &Options {
            layout: Some((4, 4)),
            ..Options::default()
        },
    )
    .unwrap();
    let input = Grid::<f32>::smooth_random(2, [1, 40, 40]);
    let (want, want_stats) = exec.run(&input, 3);
    let mut sim = exec.session(&input);
    sim.step_n(3);
    assert_eq!(sim.to_grid(), want);
    assert_eq!(sim.stats().unwrap().counters, want_stats.counters);
}

#[test]
fn load_reuse_matches_fresh_sessions() {
    let k = StencilKernel::box2d9p();
    let shape = [1, 44, 48];
    let exec = Executor::<f32>::new(&k, shape, &opts_for(&k)).unwrap();
    let a = Grid::<f32>::smooth_random(2, shape);
    let b = Grid::<f32>::from_fn_3d(2, shape, |_, y, x| ((y * 13 + x * 7) % 17) as f32 / 17.0);

    // One session reused across inputs A -> B -> A ...
    let mut sim = exec.session(&a);
    sim.step_n(3);
    let a_grid = sim.to_grid();
    let a_counters = sim.stats().unwrap().counters;

    sim.load(&b);
    assert_eq!(sim.steps(), 0, "load must clear the step counter");
    sim.step_n(5);
    let b_grid = sim.to_grid();
    let b_counters = sim.stats().unwrap().counters;

    sim.load(&a);
    sim.step_n(3);
    assert_eq!(sim.to_grid(), a_grid, "A after reuse must match A fresh");
    assert_eq!(sim.stats().unwrap().counters, a_counters);

    // ... must be bit-identical to fresh sessions per input.
    let (fresh_a, fresh_a_stats) = exec.run(&a, 3);
    let (fresh_b, fresh_b_stats) = exec.run(&b, 5);
    assert_eq!(a_grid, fresh_a);
    assert_eq!(a_counters, fresh_a_stats.counters);
    assert_eq!(b_grid, fresh_b);
    assert_eq!(b_counters, fresh_b_stats.counters);

    // reset() rewinds to the last load.
    sim.reset();
    assert_eq!(sim.steps(), 0);
    sim.step_n(3);
    assert_eq!(sim.to_grid(), fresh_a);
}

#[test]
fn probes_observe_exact_intermediate_states() {
    let k = StencilKernel::heat2d();
    let shape = [1, 40, 40];
    let exec = Executor::<f32>::new(&k, shape, &opts_for(&k)).unwrap();
    let input = Grid::<f32>::smooth_random(2, shape);

    // Mutex rather than RefCell: probe closures are `Send` (sessions
    // are `Send`), and `&Mutex<_>` is.
    let snapshots = std::sync::Mutex::new(Vec::new());
    let mut sim = exec.session(&input);
    sim.probe(3, |step, field| {
        snapshots.lock().unwrap().push((step, field.to_grid()));
    });
    sim.step_n(7);
    drop(sim);

    let snapshots = snapshots.into_inner().unwrap();
    assert_eq!(
        snapshots.iter().map(|&(s, _)| s).collect::<Vec<_>>(),
        [3, 6],
        "a cadence-3 probe fires at steps 3 and 6 over 7 steps"
    );
    for (step, grid) in &snapshots {
        let (want, _) = exec.run(&input, *step);
        assert_eq!(grid, &want, "probe at step {step} must see the live field");
    }
}

#[test]
fn one_driver_runs_every_backend() {
    let k = StencilKernel::box2d9p();
    let shape = [1, 44, 44];
    let input = Grid::<f32>::smooth_random(2, shape);
    let iters = 2;

    // The uniform driver: any session, no backend-specific code.
    fn drive(mut sim: Simulation<'_, f32>, iters: usize) -> (Grid<f32>, Option<Counters>) {
        sim.step_n(iters);
        (sim.to_grid(), sim.stats().map(|s| s.counters))
    }

    let exec = Executor::<f32>::new(
        &k,
        shape,
        &Options {
            layout: Some((4, 4)),
            ..Options::default()
        },
    )
    .unwrap();
    let (engine_grid, engine_counters) = drive(exec.session(&input), iters);
    let (naive_grid, naive_counters) = drive(exec.session_naive(&input), iters);
    assert_eq!(
        engine_grid, naive_grid,
        "engine and naive are bit-identical"
    );
    assert_eq!(engine_counters, naive_counters);

    let engine64 = Grid::<f64>::from_fn_3d(2, shape, |z, y, x| engine_grid.get(z, y, x) as f64);
    for baseline in all_baselines() {
        let sim = baseline.session(&k, &input);
        let name = sim.backend_name();
        let (grid, counters) = drive(sim, iters);
        let got64 = Grid::<f64>::from_fn_3d(2, shape, |z, y, x| grid.get(z, y, x) as f64);
        let diff = got64.max_rel_diff_interior(&engine64, &k);
        assert!(
            diff <= 2.0 * verify_tolerance(sparstencil_mat::half::Precision::Fp16),
            "{} ({name}) diverges from the engine by {diff:.3e}",
            baseline.name()
        );
        // Session-driven execute must equal the trait's execute.
        assert_eq!(
            grid,
            baseline.execute(&k, &input, iters),
            "{}",
            baseline.name()
        );
        // Pipeline-backed baselines carry a hardware model, counter
        // models do not.
        match baseline.name() {
            "TCStencil" | "ConvStencil" => assert!(counters.is_some(), "{}", baseline.name()),
            _ => assert!(counters.is_none(), "{}", baseline.name()),
        }
    }
}

#[test]
fn verify_at_matches_per_count_verify() {
    let k = StencilKernel::heat2d();
    let shape = [1, 40, 40];
    let exec = Executor::<f32>::new(&k, shape, &opts_for(&k)).unwrap();
    let input = Grid::<f32>::smooth_random(2, shape);

    let combined = exec.verify_at(&input, &[1, 2, 4]);
    assert_eq!(combined.len(), 3);
    for (iters, err) in combined {
        let single = exec.verify(&input, iters);
        assert_eq!(err, single, "verify_at({iters}) must equal verify({iters})");
        assert!(err <= verify_tolerance(exec.plan().precision) * iters as f64);
    }
}

#[test]
fn owned_sessions_are_self_contained() {
    let k = StencilKernel::heat2d();
    let shape = [1, 36, 36];
    let input = Grid::<f32>::smooth_random(2, shape);
    let exec = Executor::<f32>::new(&k, shape, &opts_for(&k)).unwrap();
    let (want, _) = exec.run(&input, 2);

    // The executor is consumed; the session owns the plan.
    let mut sim: Simulation<'static, f32> = exec.into_session(&input);
    sim.step_n(2);
    assert_eq!(sim.to_grid(), want);
}
