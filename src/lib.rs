//! Umbrella crate for the SparStencil workspace.
//!
//! This crate hosts the cross-crate integration tests (`tests/`) and the
//! runnable examples (`examples/`). The actual functionality lives in the
//! member crates, re-exported here for convenience:
//!
//! - [`sparstencil`] — the SparStencil pipeline (the paper's contribution).
//! - [`sparstencil_mat`] — matrix substrate (dense, 2:4, staircase, fp16).
//! - [`sparstencil_graph`] — conflict graphs and matching algorithms.
//! - [`sparstencil_tcu`] — the sparse Tensor Core simulator.
//! - [`sparstencil_zoo`] — 79 real-world stencil kernels over 9 domains.
//! - [`sparstencil_baselines`] — state-of-the-art baseline mappings.
//! - [`sparstencil_shard`] — sharded-grid execution with halo exchange.
//!
//! # The session API in one screen
//!
//! Compile once with [`sparstencil::pipeline::Executor`], then drive a
//! persistent [`sparstencil::session::Simulation`]: the plan — layout
//! exploration, morphing, 2:4 conversion, kernel generation (§3–4 of the
//! paper) — is reused across thousands of time steps, the way real
//! stencil workloads (fluid, seismic, heat solvers) amortize
//! compilation:
//!
//! ```
//! use sparstencil::prelude::*;
//!
//! let kernel = StencilKernel::box2d9p();
//! let shape = [1, 66, 66];
//! let exec = Executor::<f32>::new(&kernel, shape, &Options::default()).unwrap();
//! let input = Grid::<f32>::smooth_random(2, shape);
//!
//! // Setup (embedding, quantization, buffer allocation) happens here,
//! // once; each step after is allocation-free.
//! let mut sim = exec.session(&input);
//!
//! // Observe the live field mid-run, zero-copy, every 2 steps.
//! sim.probe(2, |step, field| {
//!     let peak = field.iter().fold(0.0f32, |m, v| m.max(v.abs()));
//!     assert!(peak.is_finite(), "step {step}");
//! });
//!
//! sim.step_n(4);                      // step incrementally ...
//! let snapshot = sim.field().get(0, 30, 30);
//! sim.step_n(4);                      // ... and keep going, no re-setup
//!
//! let stats = sim.stats().unwrap();   // accumulated over the session
//! assert!(stats.counters.n_mma() > 0);
//!
//! sim.load(&input);                   // reuse the buffers for a new run
//! assert_eq!(sim.steps(), 0);
//! let _ = snapshot;
//! ```
//!
//! Every execution path — the optimized engine, the retained naive
//! oracle, and all seven comparison systems in
//! [`sparstencil_baselines`] — plugs into the same
//! [`sparstencil::session::Backend`] trait, so one driver steps any of
//! them interchangeably (see `tests/session_api.rs`).

pub use sparstencil;
pub use sparstencil_baselines;
pub use sparstencil_graph;
pub use sparstencil_mat;
pub use sparstencil_shard;
pub use sparstencil_tcu;
pub use sparstencil_zoo;
