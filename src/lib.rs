//! Umbrella crate for the SparStencil workspace.
//!
//! This crate hosts the cross-crate integration tests (`tests/`) and the
//! runnable examples (`examples/`). The actual functionality lives in the
//! member crates, re-exported here for convenience:
//!
//! - [`sparstencil`] — the SparStencil pipeline (the paper's contribution).
//! - [`sparstencil_mat`] — matrix substrate (dense, 2:4, staircase, fp16).
//! - [`sparstencil_graph`] — conflict graphs and matching algorithms.
//! - [`sparstencil_tcu`] — the sparse Tensor Core simulator.
//! - [`sparstencil_zoo`] — 79 real-world stencil kernels over 9 domains.
//! - [`sparstencil_baselines`] — state-of-the-art baseline mappings.

pub use sparstencil;
pub use sparstencil_baselines;
pub use sparstencil_graph;
pub use sparstencil_mat;
pub use sparstencil_tcu;
pub use sparstencil_zoo;
