//! The persistent thread pool behind the parallel iterators.
//!
//! One global pool is spawned on first use (`threads - 1` workers; the
//! calling thread participates in every parallel region). Dispatching a
//! parallel region performs **no heap allocation**: the job is passed as
//! a raw `dyn Fn` pointer through pre-existing shared state, tasks are
//! claimed with an atomic cursor, and completion is signalled through a
//! condvar. The SparStencil executor's zero-allocation steady state
//! depends on this property (see `tests/alloc_steady_state.rs` in the
//! workspace root).
//!
//! Concurrency notes:
//! - Concurrent `run_tasks` callers are serialized by a run lock; tasks
//!   that recursively enter `run_tasks` (or calls made from a worker)
//!   fall back to inline serial execution, so nesting cannot deadlock.
//! - The task cursor packs `(generation << 32) | next_index` into one
//!   atomic; a worker's claim CAS fails the moment a new generation is
//!   installed, so a stale worker can never execute an old job pointer
//!   against a new generation's indices.
//! - Panics inside tasks are caught, recorded, and re-raised on the
//!   calling thread once the region completes. The guided dispatchers
//!   additionally catch panics per *claim*: one panicking claim cannot
//!   abandon the rest of the index space, and the first original
//!   payload is re-raised after every other claim ran.

use std::cell::Cell;
use std::ops::Range;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Barrier, Condvar, Mutex, OnceLock};

/// Lifetime-erased job reference: `f(task_index)`. The true lifetime is
/// "until every task of the installing generation completed", which the
/// installer enforces by blocking until `done == total`.
type Job = &'static (dyn Fn(usize) + Sync);

/// The job slot lives inside a mutex so installation pairs atomically
/// with the generation bump.
struct Ctrl {
    generation: u32,
    job: Option<JobPtr>,
}

#[derive(Clone, Copy)]
struct JobPtr(Job);
// SAFETY: the pointee is `Sync` and is kept alive by the installing
// thread until every task of its generation has completed.
unsafe impl Send for JobPtr {}

struct Shared {
    ctrl: Mutex<Ctrl>,
    work_cv: Condvar,
    done_cv: Condvar,
    /// `(generation << 32) | next_task_index`.
    cursor: AtomicU64,
    /// Tasks in the current generation.
    total: AtomicUsize,
    /// Completed tasks in the current generation.
    done: AtomicUsize,
    /// A task of the current generation panicked.
    panicked: AtomicBool,
}

struct Pool {
    shared: &'static Shared,
    workers: usize,
    /// Serializes top-level parallel regions from concurrent threads.
    run_lock: Mutex<()>,
}

thread_local! {
    /// Set while this thread is executing inside a parallel region
    /// (worker threads permanently; the installer for the duration of a
    /// region). Nested regions run inline serially.
    static IN_POOL: Cell<bool> = const { Cell::new(false) };
}

static POOL: OnceLock<Pool> = OnceLock::new();

fn desired_threads() -> usize {
    if let Ok(v) = std::env::var("RAYON_NUM_THREADS") {
        if let Ok(n) = v.parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

fn pool() -> &'static Pool {
    POOL.get_or_init(|| {
        let shared: &'static Shared = Box::leak(Box::new(Shared {
            ctrl: Mutex::new(Ctrl {
                generation: 0,
                job: None,
            }),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
            cursor: AtomicU64::new(0),
            total: AtomicUsize::new(0),
            done: AtomicUsize::new(0),
            panicked: AtomicBool::new(false),
        }));
        let workers = desired_threads().saturating_sub(1);
        // Warm-up handshake: every worker blocks on (and wakes from) a
        // condvar once before the pool is handed out, so per-thread
        // lazy synchronization/TLS initialization — which performs a
        // small one-time heap allocation per thread — happens here and
        // never inside a caller's parallel region. The executor's
        // zero-allocation steady state relies on this.
        let ready: &'static Barrier = Box::leak(Box::new(Barrier::new(workers + 1)));
        for i in 0..workers {
            std::thread::Builder::new()
                .name(format!("rayon-shim-{i}"))
                .spawn(move || {
                    ready.wait();
                    ready.wait();
                    worker_loop(shared)
                })
                .expect("failed to spawn pool worker");
        }
        // Two rounds: the first waits for every thread to exist, the
        // second forces each through a full block/wake cycle.
        ready.wait();
        ready.wait();
        Pool {
            shared,
            workers,
            run_lock: Mutex::new(()),
        }
    })
}

/// Number of threads participating in parallel regions.
pub fn current_num_threads() -> usize {
    pool().workers + 1
}

fn worker_loop(shared: &'static Shared) {
    IN_POOL.with(|f| f.set(true));
    let mut seen: u32 = 0;
    loop {
        let (generation, job) = {
            // Poison recovery on the control mutex throughout this file:
            // its critical sections run no task code, and every region
            // re-initializes the shared state from scratch, so a poisoned
            // lock carries no corrupt invariants (same argument as the
            // `run_lock` below).
            let mut g = shared.ctrl.lock().unwrap_or_else(|e| e.into_inner());
            while g.generation == seen {
                g = shared.work_cv.wait(g).unwrap_or_else(|e| e.into_inner());
            }
            seen = g.generation;
            (g.generation, g.job)
        };
        if let Some(JobPtr(j)) = job {
            execute_tasks(shared, j, generation);
        }
    }
}

/// Claim and run tasks of `generation` until the cursor moves past the
/// end or the generation changes. Returns after contributing to `done`.
fn execute_tasks(shared: &Shared, job: &(dyn Fn(usize) + Sync), generation: u32) {
    loop {
        let cur = shared.cursor.load(Ordering::SeqCst);
        if (cur >> 32) as u32 != generation {
            return; // a newer region was installed
        }
        // Load `total` only after the generation check: installation
        // writes the cursor *before* the total, so a matching generation
        // guarantees this total belongs to it (or to no install at all).
        let total = shared.total.load(Ordering::SeqCst);
        let idx = (cur & 0xffff_ffff) as usize;
        if idx >= total {
            return;
        }
        if shared
            .cursor
            .compare_exchange(cur, cur + 1, Ordering::SeqCst, Ordering::SeqCst)
            .is_err()
        {
            continue;
        }
        if catch_unwind(AssertUnwindSafe(|| job(idx))).is_err() {
            shared.panicked.store(true, Ordering::SeqCst);
        }
        if shared.done.fetch_add(1, Ordering::SeqCst) + 1 == total {
            let _g = shared.ctrl.lock().unwrap_or_else(|e| e.into_inner());
            shared.done_cv.notify_all();
        }
    }
}

/// Run `job(i)` for every `i in 0..n` across the pool. Blocks until all
/// tasks completed; panics (after completion) if any task panicked.
/// Allocation-free after the pool exists.
pub fn run_tasks(n: usize, job: &(dyn Fn(usize) + Sync)) {
    if n == 0 {
        return;
    }
    let p = pool();
    let nested = IN_POOL.with(|f| f.get());
    if p.workers == 0 || nested || n == 1 {
        for i in 0..n {
            job(i);
        }
        return;
    }
    assert!(n < u32::MAX as usize, "too many tasks for one region");
    // A task panic is re-raised below while this guard is live, which
    // poisons the mutex; that is fine — every region re-initializes the
    // shared state from scratch, so recover the lock instead of letting
    // one caught panic permanently disable parallel execution.
    let _run_guard = p
        .run_lock
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner());
    IN_POOL.with(|f| f.set(true));
    let shared = p.shared;
    let generation = {
        let mut g = shared.ctrl.lock().unwrap_or_else(|e| e.into_inner());
        g.generation = g.generation.wrapping_add(1);
        shared.done.store(0, Ordering::SeqCst);
        shared.panicked.store(false, Ordering::SeqCst);
        // Cursor before total: see the ordering comment in
        // `execute_tasks`.
        shared
            .cursor
            .store((g.generation as u64) << 32, Ordering::SeqCst);
        shared.total.store(n, Ordering::SeqCst);
        // SAFETY: the reference is kept alive past every use — this
        // function blocks until `done == n`, after which no thread can
        // claim a task of this generation (the cursor CAS fails on the
        // generation bits), and `g.job` is cleared below.
        let erased: Job = unsafe { std::mem::transmute::<&(dyn Fn(usize) + Sync), Job>(job) };
        g.job = Some(JobPtr(erased));
        shared.work_cv.notify_all();
        g.generation
    };
    execute_tasks(shared, job, generation);
    {
        let mut g = shared.ctrl.lock().unwrap_or_else(|e| e.into_inner());
        while shared.done.load(Ordering::SeqCst) < n {
            g = shared.done_cv.wait(g).unwrap_or_else(|e| e.into_inner());
        }
        g.job = None;
    }
    IN_POOL.with(|f| f.set(false));
    if shared.panicked.load(Ordering::SeqCst) {
        panic!("a task in a parallel region panicked");
    }
}

/// Evenly split `0..n_items` into `chunks` contiguous ranges; range `i`
/// is `chunk_range(n_items, chunks, i)`.
pub fn chunk_range(n_items: usize, chunks: usize, i: usize) -> Range<usize> {
    let base = n_items / chunks;
    let rem = n_items % chunks;
    let start = i * base + i.min(rem);
    let len = base + usize::from(i < rem);
    start..(start + len)
}

/// Split `0..n_items` into `slots.len()` contiguous ranges and run
/// `f(slot_index, &mut slots[slot_index], range)` for each non-empty
/// range in parallel. Each slot is handed to exactly one task, which is
/// what makes persistent per-worker scratch (allocated once, reused
/// every call) sound. Extension over real rayon; see the crate docs.
pub fn parallel_for_slots<S: Send>(
    n_items: usize,
    slots: &mut [S],
    f: impl Fn(usize, &mut S, Range<usize>) + Sync,
) {
    let n_slots = slots.len();
    assert!(n_slots > 0, "parallel_for_slots needs at least one slot");
    if n_items == 0 {
        return;
    }
    struct SlotsPtr<S>(*mut S);
    // SAFETY: each slot index is visited by exactly one task.
    unsafe impl<S: Send> Sync for SlotsPtr<S> {}
    let slots_ptr = SlotsPtr(slots.as_mut_ptr());
    run_tasks(n_slots, &|i| {
        let slots_ptr = &slots_ptr;
        let range = chunk_range(n_items, n_slots, i);
        if range.is_empty() {
            return;
        }
        // SAFETY: task i is the only accessor of slots[i].
        let slot = unsafe { &mut *slots_ptr.0.add(i) };
        f(i, slot, range);
    });
}

/// Guided self-scheduling variant of [`parallel_for_slots`]: instead of
/// one static contiguous range per slot, the slot tasks repeatedly claim
/// ranges from a shared atomic cursor, with claim sizes shrinking as the
/// remaining work drains (half a fair share per claim, never below
/// `min_chunk` items). Work whose per-item cost varies across the index
/// space — e.g. stencil column blocks in edge-light vs edge-heavy grid
/// regions — load-balances automatically: fast tasks simply claim more
/// chunks. `f(slot, &mut slots[slot], range)` may therefore run several
/// times per slot, over disjoint ranges that together cover
/// `0..n_items`; each slot is still handed to exactly one task, which
/// keeps persistent per-worker scratch sound. Allocation-free (the
/// cursor lives on the caller's stack), like every dispatch here.
pub fn parallel_for_slots_guided<S: Send>(
    n_items: usize,
    min_chunk: usize,
    slots: &mut [S],
    f: impl Fn(usize, &mut S, Range<usize>) + Sync,
) {
    // One group spanning the whole range: the 2-level scheduler's
    // boundary clipping degenerates to a no-op (`group_len − local`
    // equals `remaining` when there is a single group), so claim sizes,
    // claim order, and the serial fast path are identical to a
    // dedicated 1-level protocol — one implementation of the atomic
    // claim loop serves both dispatchers.
    parallel_for_slots_guided2(1, n_items, min_chunk, slots, |i, slot, _group, range| {
        f(i, slot, range)
    });
}

/// Two-level guided self-scheduling: the index space is `groups`
/// consecutive segments of `group_len` items each (a *(group, item)*
/// matrix flattened group-major), tasks claim shrinking chunks from one
/// shared atomic cursor exactly like [`parallel_for_slots_guided`] —
/// but every claim is **clipped at the boundary of the group it starts
/// in**, so each `f(slot, &mut slots[slot], group, local_range)` call
/// covers items of exactly one group (`local_range` is group-relative).
/// The claim accounting is thus over a 2-level index while the cursor
/// stays a single atomic: a claim can never span groups, and within a
/// group claims arrive in ascending order.
///
/// This is the batch executor's dispatch primitive: groups are
/// simulation sessions, items are z-sliding runs, and the clipping is
/// what lets a lane bind one session's buffers per claim while lanes as
/// a whole drain work from whichever session still has it — no barrier
/// between groups. Allocation-free, like every dispatch here.
pub fn parallel_for_slots_guided2<S: Send>(
    groups: usize,
    group_len: usize,
    min_chunk: usize,
    slots: &mut [S],
    f: impl Fn(usize, &mut S, usize, Range<usize>) + Sync,
) {
    let n_slots = slots.len();
    assert!(
        n_slots > 0,
        "parallel_for_slots_guided2 needs at least one slot"
    );
    let n_items = groups
        .checked_mul(group_len)
        .expect("2-level index overflows usize");
    if n_items == 0 {
        return;
    }
    let min_chunk = min_chunk.max(1);
    if n_slots == 1 || n_items <= min_chunk {
        // Nothing to balance: every group's full range, in order, in
        // slot 0 — the same per-call "one group only" contract. A panic
        // propagates immediately (no other claims exist to protect).
        for g in 0..groups {
            f(0, &mut slots[0], g, 0..group_len);
        }
        return;
    }
    let cursor = AtomicUsize::new(0);
    // Unwind-safe claims: a panic inside one `f` call must not abandon
    // the rest of the index space (the batch executor relies on "one
    // panicking claim cannot stop other groups' claims from running").
    // Each claim is caught, the first payload is kept, the claim loop
    // keeps draining, and the original payload is re-raised on the
    // dispatching thread once the region completes — so coverage of all
    // non-panicking claims is preserved and callers still observe the
    // panic they would have seen without the pool.
    let claim_panic: Mutex<Option<Box<dyn std::any::Any + Send>>> = Mutex::new(None);
    struct SlotsPtr<S>(*mut S);
    // SAFETY: each slot index is visited by exactly one task.
    unsafe impl<S: Send> Sync for SlotsPtr<S> {}
    let slots_ptr = SlotsPtr(slots.as_mut_ptr());
    run_tasks(n_slots, &|i| {
        // Capture the Sync wrapper (not the raw pointer field) by
        // reference.
        let slots_ptr = &slots_ptr;
        // SAFETY: task i is the only accessor of slots[i].
        let slot = unsafe { &mut *slots_ptr.0.add(i) };
        loop {
            let start = cursor.load(Ordering::SeqCst);
            if start >= n_items {
                return;
            }
            let remaining = n_items - start;
            let local = start % group_len;
            // Guided size, clipped so the claim stays inside the group
            // the cursor currently points into.
            let chunk = (remaining / (2 * n_slots))
                .max(min_chunk)
                .min(remaining)
                .min(group_len - local);
            if cursor
                .compare_exchange(start, start + chunk, Ordering::SeqCst, Ordering::SeqCst)
                .is_err()
            {
                continue; // another task claimed first; re-derive the chunk
            }
            // AssertUnwindSafe: `slot` and the caller's captures may be
            // observed after a caught panic, but only by later `f` calls
            // of the same caller, which sees the panic re-raised below —
            // exactly the exposure a panic mid-region already implies.
            let r = catch_unwind(AssertUnwindSafe(|| {
                f(i, slot, start / group_len, local..local + chunk)
            }));
            if let Err(payload) = r {
                let mut first = match claim_panic.lock() {
                    Ok(g) => g,
                    Err(poisoned) => poisoned.into_inner(),
                };
                first.get_or_insert(payload);
            }
        }
    });
    if let Some(payload) = match claim_panic.into_inner() {
        Ok(p) => p,
        Err(poisoned) => poisoned.into_inner(),
    } {
        std::panic::resume_unwind(payload);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    #[test]
    fn runs_every_task_exactly_once() {
        let hits: Vec<AtomicU32> = (0..257).map(|_| AtomicU32::new(0)).collect();
        run_tasks(hits.len(), &|i| {
            hits[i].fetch_add(1, Ordering::SeqCst);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::SeqCst) == 1));
    }

    #[test]
    fn nested_regions_run_serially() {
        let count = AtomicU32::new(0);
        run_tasks(4, &|_| {
            run_tasks(4, &|_| {
                count.fetch_add(1, Ordering::SeqCst);
            });
        });
        assert_eq!(count.load(Ordering::SeqCst), 16);
    }

    #[test]
    fn task_panic_propagates() {
        let r = std::panic::catch_unwind(|| {
            run_tasks(8, &|i| {
                if i == 3 {
                    panic!("boom");
                }
            });
        });
        assert!(r.is_err());
    }

    #[test]
    fn pool_survives_task_panic() {
        // A caught task panic must not poison the pool: later regions
        // run normally.
        let r = std::panic::catch_unwind(|| {
            run_tasks(8, &|i| {
                if i == 2 {
                    panic!("boom");
                }
            });
        });
        assert!(r.is_err());
        let count = AtomicU32::new(0);
        run_tasks(16, &|_| {
            count.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(count.load(Ordering::SeqCst), 16);
    }

    #[test]
    fn chunk_ranges_partition() {
        for n in [0usize, 1, 7, 64, 65] {
            for k in [1usize, 2, 3, 8] {
                let mut covered = vec![false; n];
                for i in 0..k {
                    for j in chunk_range(n, k, i) {
                        assert!(!covered[j]);
                        covered[j] = true;
                    }
                }
                assert!(covered.iter().all(|&c| c));
            }
        }
    }

    #[test]
    fn slots_receive_disjoint_ranges() {
        let mut slots = vec![0usize; 3];
        parallel_for_slots(100, &mut slots, |_, slot, range| {
            *slot += range.len();
        });
        assert_eq!(slots.iter().sum::<usize>(), 100);
    }

    #[test]
    fn guided_ranges_exactly_cover_items() {
        for (n_items, n_slots, min_chunk) in [
            (1usize, 3usize, 1usize),
            (7, 2, 1),
            (100, 3, 4),
            (257, 4, 1),
        ] {
            let hits: Vec<AtomicU32> = (0..n_items).map(|_| AtomicU32::new(0)).collect();
            let mut slots = vec![(); n_slots];
            parallel_for_slots_guided(n_items, min_chunk, &mut slots, |_, _, range| {
                for j in range {
                    hits[j].fetch_add(1, Ordering::SeqCst);
                }
            });
            assert!(
                hits.iter().all(|h| h.load(Ordering::SeqCst) == 1),
                "n_items={n_items} n_slots={n_slots}: every item exactly once"
            );
        }
    }

    #[test]
    fn guided_single_slot_runs_whole_range_inline() {
        let mut slots = vec![Vec::<Range<usize>>::new()];
        parallel_for_slots_guided(42, 1, &mut slots, |i, slot, range| {
            assert_eq!(i, 0);
            slot.push(range);
        });
        assert_eq!(slots[0], vec![0..42]);
    }

    #[test]
    fn guided2_claims_cover_and_never_span_groups() {
        for (groups, group_len, n_slots, min_chunk) in [
            (1usize, 1usize, 3usize, 1usize),
            (3, 7, 2, 1),
            (5, 13, 4, 2),
            (8, 126, 3, 1),
            (16, 1, 2, 1),
        ] {
            let hits: Vec<AtomicU32> = (0..groups * group_len).map(|_| AtomicU32::new(0)).collect();
            let mut slots = vec![(); n_slots];
            parallel_for_slots_guided2(groups, group_len, min_chunk, &mut slots, |_, _, g, r| {
                assert!(g < groups, "group index in range");
                assert!(r.end <= group_len, "claim clipped at its group boundary");
                for j in r {
                    hits[g * group_len + j].fetch_add(1, Ordering::SeqCst);
                }
            });
            assert!(
                hits.iter().all(|h| h.load(Ordering::SeqCst) == 1),
                "groups={groups} group_len={group_len} slots={n_slots}: \
                 every (group, item) exactly once"
            );
        }
    }

    #[test]
    fn guided2_single_slot_visits_groups_in_order() {
        let mut slots = vec![Vec::<(usize, Range<usize>)>::new()];
        parallel_for_slots_guided2(4, 6, 1, &mut slots, |i, slot, g, r| {
            assert_eq!(i, 0);
            slot.push((g, r));
        });
        let want: Vec<(usize, Range<usize>)> = (0..4).map(|g| (g, 0..6)).collect();
        assert_eq!(slots[0], want);
    }

    #[test]
    fn guided2_claims_ascend_within_each_group() {
        // Per slot, record every claim; claims of one group must arrive
        // in ascending, gap-free order across slots (the cursor hands
        // them out monotonically), and each slot's own sequence must
        // respect the flat order — which is what lets the executor rely
        // on "one claim = one contiguous range of one session's runs".
        let mut slots: Vec<Vec<(usize, Range<usize>)>> = vec![Vec::new(); 3];
        parallel_for_slots_guided2(5, 9, 1, &mut slots, |_, slot, g, r| {
            slot.push((g, r));
        });
        let mut all: Vec<(usize, Range<usize>)> = slots.iter().flatten().cloned().collect();
        all.sort_by_key(|(g, r)| (*g, r.start));
        let mut next = (0usize, 0usize);
        for (g, r) in all {
            if g != next.0 {
                assert_eq!(next.1, 9, "group {} fully covered before {g}", next.0);
                next = (g, 0);
            }
            assert_eq!(r.start, next.1, "claims within group {g} are gap-free");
            next.1 = r.end;
        }
        assert_eq!(next, (4, 9));
    }

    #[test]
    fn guided2_claim_panic_keeps_other_claims_and_payload() {
        // One panicking claim must not abandon the remaining index
        // space: every item outside the panicking claim's group is
        // still executed exactly once, and the caller observes the
        // ORIGINAL panic payload (not a generic pool message).
        let (groups, group_len) = (8usize, 5usize);
        let hits: Vec<AtomicU32> = (0..groups * group_len).map(|_| AtomicU32::new(0)).collect();
        let mut slots = vec![(); 4];
        let r = std::panic::catch_unwind(AssertUnwindSafe(|| {
            parallel_for_slots_guided2(groups, group_len, 1, &mut slots, |_, _, g, range| {
                if g == 3 && range.start == 0 {
                    panic!("injected claim fault");
                }
                for j in range {
                    hits[g * group_len + j].fetch_add(1, Ordering::SeqCst);
                }
            });
        }));
        let payload = r.expect_err("the claim panic must propagate");
        assert_eq!(
            payload.downcast_ref::<&str>(),
            Some(&"injected claim fault"),
            "original payload survives the region"
        );
        for g in 0..groups {
            if g == 3 {
                continue; // the panicking claim's own group may be partial
            }
            for j in 0..group_len {
                assert_eq!(
                    hits[g * group_len + j].load(Ordering::SeqCst),
                    1,
                    "group {g} item {j} must run exactly once despite the panic"
                );
            }
        }
    }

    #[test]
    fn guided_chunks_cover_and_respect_min() {
        // 64 items, min_chunk 2: claims partition the index space and
        // respect the minimum granularity — only the final tail claim
        // (bounded by what remains) may fall below it.
        let mut slots = vec![Vec::<usize>::new(), Vec::new()];
        parallel_for_slots_guided(64, 2, &mut slots, |_, slot, range| {
            slot.push(range.len());
        });
        let lens: Vec<usize> = slots.iter().flatten().copied().collect();
        assert_eq!(lens.iter().sum::<usize>(), 64);
        let below_min = lens.iter().filter(|&&l| l < 2).count();
        assert!(below_min <= 1, "at most the tail claim may be short");
    }
}
