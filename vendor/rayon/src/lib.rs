//! Vendored, API-compatible subset of [rayon](https://docs.rs/rayon).
//!
//! The build environment has no registry access, so this crate
//! reimplements exactly the parallel-iterator surface the workspace
//! uses, backed by one persistent thread pool ([`pool`]):
//!
//! - `slice.par_iter().map(f).collect::<Vec<_>>()`
//! - `range.into_par_iter().map(f).collect::<Vec<_>>()`
//! - `slice.par_chunks_mut(n).enumerate().for_each(f)`
//!
//! plus one extension real rayon does not have,
//! [`pool::parallel_for_slots`], which hands each worker a persistent
//! `&mut` scratch slot — the primitive the SparStencil executor uses
//! for its zero-allocation steady state (dispatch through the pool
//! performs no heap allocation once the pool threads exist).
//!
//! Ordering guarantees match rayon: `collect` preserves item order and
//! the work splitting is deterministic (contiguous chunks), so results
//! never depend on thread scheduling.

pub mod pool;

/// Number of threads the global pool runs on (compatible with
/// `rayon::current_num_threads`).
pub fn current_num_threads() -> usize {
    pool::current_num_threads()
}

/// The prelude: parallel-iterator extension traits.
pub mod prelude {
    pub use crate::iter::{IntoParallelIterator, IntoParallelRefIterator, ParallelSliceMut};
}

pub mod iter {
    //! Parallel iterator adaptors (the consumed subset).

    use crate::pool;
    use std::mem::MaybeUninit;
    use std::ops::Range;

    /// `.par_iter()` on borrowed collections.
    pub trait IntoParallelRefIterator<'a> {
        /// Item type yielded by the parallel iterator.
        type Item: Sync + 'a;
        /// Borrowing parallel iterator over `&self`.
        fn par_iter(&'a self) -> ParSlice<'a, Self::Item>;
    }

    impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
        type Item = T;
        fn par_iter(&'a self) -> ParSlice<'a, T> {
            ParSlice { slice: self }
        }
    }

    impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
        type Item = T;
        fn par_iter(&'a self) -> ParSlice<'a, T> {
            ParSlice { slice: self }
        }
    }

    /// `.into_par_iter()` on owned ranges.
    pub trait IntoParallelIterator {
        /// Item type yielded by the parallel iterator.
        type Item: Send;
        /// The iterator type.
        type Iter;
        /// Convert into a parallel iterator.
        fn into_par_iter(self) -> Self::Iter;
    }

    impl IntoParallelIterator for Range<usize> {
        type Item = usize;
        type Iter = ParRange;
        fn into_par_iter(self) -> ParRange {
            ParRange { range: self }
        }
    }

    /// Parallel iterator over a slice.
    pub struct ParSlice<'a, T> {
        slice: &'a [T],
    }

    impl<'a, T: Sync> ParSlice<'a, T> {
        /// Map every element through `f` in parallel.
        pub fn map<U, F>(self, f: F) -> ParMap<'a, T, F>
        where
            U: Send,
            F: Fn(&'a T) -> U + Sync,
        {
            ParMap {
                slice: self.slice,
                f,
            }
        }
    }

    /// Mapped parallel slice iterator.
    pub struct ParMap<'a, T, F> {
        slice: &'a [T],
        f: F,
    }

    impl<'a, T: Sync, F> ParMap<'a, T, F> {
        /// Collect mapped results preserving input order.
        pub fn collect<U, C>(self) -> C
        where
            U: Send,
            F: Fn(&'a T) -> U + Sync,
            C: From<Vec<U>>,
        {
            let slice = self.slice;
            let f = &self.f;
            C::from(ordered_collect(slice.len(), |i| f(&slice[i])))
        }
    }

    /// Parallel iterator over `Range<usize>`.
    pub struct ParRange {
        range: Range<usize>,
    }

    impl ParRange {
        /// Map every index through `f` in parallel.
        pub fn map<U, F>(self, f: F) -> ParRangeMap<F>
        where
            U: Send,
            F: Fn(usize) -> U + Sync,
        {
            ParRangeMap {
                range: self.range,
                f,
            }
        }
    }

    /// Mapped parallel range iterator.
    pub struct ParRangeMap<F> {
        range: Range<usize>,
        f: F,
    }

    impl<F> ParRangeMap<F> {
        /// Collect mapped results preserving index order.
        pub fn collect<U, C>(self) -> C
        where
            U: Send,
            F: Fn(usize) -> U + Sync,
            C: From<Vec<U>>,
        {
            let start = self.range.start;
            let n = self.range.end.saturating_sub(start);
            let f = &self.f;
            C::from(ordered_collect(n, |i| f(start + i)))
        }
    }

    /// Run `f(i)` for `i in 0..n` in parallel, collecting results in
    /// index order. Each slot is written exactly once by exactly one
    /// task, so the unsafe assembly below is race-free.
    fn ordered_collect<U: Send>(n: usize, f: impl Fn(usize) -> U + Sync) -> Vec<U> {
        let mut out: Vec<MaybeUninit<U>> = Vec::with_capacity(n);
        // SAFETY: MaybeUninit contents are allowed to be uninitialized.
        #[allow(clippy::uninit_vec)]
        unsafe {
            out.set_len(n);
        }
        {
            let out_ptr = SendPtr(out.as_mut_ptr());
            pool::run_tasks(n, &|i| {
                let out_ptr = &out_ptr;
                // SAFETY: each index i is dispatched to exactly one task.
                unsafe {
                    out_ptr.0.add(i).write(MaybeUninit::new(f(i)));
                }
            });
        }
        // SAFETY: every slot was initialized above (run_tasks ran each
        // index exactly once, or panicked — in which case we never get
        // here and the Vec<MaybeUninit> leaks its elements, which is
        // safe).
        unsafe { std::mem::transmute::<Vec<MaybeUninit<U>>, Vec<U>>(out) }
    }

    struct SendPtr<T>(*mut T);
    // SAFETY: the pointer is only used to write disjoint slots.
    unsafe impl<T: Send> Sync for SendPtr<T> {}

    /// `.par_chunks_mut()` on mutable slices.
    pub trait ParallelSliceMut<T: Send> {
        /// Parallel iterator over non-overlapping mutable chunks.
        fn par_chunks_mut(&mut self, chunk_size: usize) -> ParChunksMut<'_, T>;
    }

    impl<T: Send> ParallelSliceMut<T> for [T] {
        fn par_chunks_mut(&mut self, chunk_size: usize) -> ParChunksMut<'_, T> {
            assert!(chunk_size > 0, "chunk size must be positive");
            ParChunksMut {
                slice: self,
                chunk_size,
            }
        }
    }

    /// Parallel mutable-chunks iterator.
    pub struct ParChunksMut<'a, T> {
        slice: &'a mut [T],
        chunk_size: usize,
    }

    impl<'a, T: Send> ParChunksMut<'a, T> {
        /// Pair every chunk with its index.
        pub fn enumerate(self) -> ParChunksMutEnumerate<'a, T> {
            ParChunksMutEnumerate {
                slice: self.slice,
                chunk_size: self.chunk_size,
            }
        }

        /// Apply `f` to every chunk in parallel.
        pub fn for_each<F>(self, f: F)
        where
            F: Fn(&mut [T]) + Sync,
        {
            self.enumerate().for_each(|(_, chunk)| f(chunk));
        }
    }

    /// Enumerated parallel mutable-chunks iterator.
    pub struct ParChunksMutEnumerate<'a, T> {
        slice: &'a mut [T],
        chunk_size: usize,
    }

    impl<T: Send> ParChunksMutEnumerate<'_, T> {
        /// Apply `f` to every `(index, chunk)` in parallel.
        pub fn for_each<F>(self, f: F)
        where
            F: Fn((usize, &mut [T])) + Sync,
        {
            let len = self.slice.len();
            if len == 0 {
                return;
            }
            let chunk = self.chunk_size;
            let n_chunks = len.div_ceil(chunk);
            let base = SendPtr(self.slice.as_mut_ptr());
            pool::run_tasks(n_chunks, &|i| {
                let base = &base;
                let start = i * chunk;
                let end = (start + chunk).min(len);
                // SAFETY: chunks [start, end) are pairwise disjoint and
                // within the original slice; each is visited by exactly
                // one task.
                let part =
                    unsafe { std::slice::from_raw_parts_mut(base.0.add(start), end - start) };
                f((i, part));
            });
        }
    }
}
