//! Vendored mini benchmark harness exposing the
//! [criterion](https://docs.rs/criterion) API subset this workspace's
//! benches use: `Criterion::{bench_function, benchmark_group}`, groups
//! with `throughput`/`sample_size`/`bench_function`/`bench_with_input`,
//! `Bencher::iter`, `Throughput`, `BenchmarkId`, and the
//! `criterion_group!`/`criterion_main!` macros.
//!
//! Unlike the statistical original this shim simply calibrates an
//! iteration count to a target sample duration, takes `sample_size`
//! samples, and reports the median time per iteration (plus derived
//! throughput when requested). Good enough to compare two
//! implementations in the same process; not a replacement for real
//! criterion's rigor.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Per-sample measurement target.
const TARGET_SAMPLE: Duration = Duration::from_millis(40);
/// Warm-up budget before sampling.
const WARMUP: Duration = Duration::from_millis(100);

/// Work-per-iteration declaration, for derived throughput reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A two-part benchmark identifier (`function/parameter`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Build an id from a function name and a parameter display.
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        Self {
            id: format!("{function}/{parameter}"),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Run `f` for the harness-chosen number of iterations, timing the
    /// whole batch.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// The harness entry point.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Benchmark a single function.
    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(&id.to_string(), 10, None, f);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Display) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.to_string(),
            throughput: None,
            sample_size: 10,
        }
    }
}

/// A group of benchmarks sharing throughput/sample settings.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Declare the work performed per iteration for throughput lines.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Number of samples per benchmark (criterion-compatible knob).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Benchmark a function within the group.
    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        run_bench(&full, self.sample_size, self.throughput, f);
        self
    }

    /// Benchmark a function against a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id);
        run_bench(&full, self.sample_size, self.throughput, |b| f(b, input));
        self
    }

    /// Finish the group (formatting no-op; kept for API compatibility).
    pub fn finish(self) {}
}

fn run_bench<F: FnMut(&mut Bencher)>(
    name: &str,
    samples: usize,
    throughput: Option<Throughput>,
    mut f: F,
) {
    // Calibrate: run with growing iteration counts until one batch
    // exceeds the target sample time, warming caches along the way.
    let mut iters: u64 = 1;
    let warm_start = Instant::now();
    let mut per_iter;
    loop {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        per_iter = b.elapsed.as_secs_f64() / iters as f64;
        if b.elapsed >= TARGET_SAMPLE || warm_start.elapsed() >= WARMUP {
            break;
        }
        iters = iters.saturating_mul(2);
    }
    let target = TARGET_SAMPLE.as_secs_f64();
    iters = ((target / per_iter.max(1e-12)).ceil() as u64).clamp(1, 1_000_000_000);

    let mut times: Vec<f64> = (0..samples)
        .map(|_| {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            b.elapsed.as_secs_f64() / b.iters as f64
        })
        .collect();
    times.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let median = times[times.len() / 2];

    let mut line = format!("{name:<50} time: {}/iter", fmt_time(median));
    if let Some(t) = throughput {
        let (count, unit) = match t {
            Throughput::Elements(n) => (n as f64, "elem"),
            Throughput::Bytes(n) => (n as f64, "B"),
        };
        line.push_str(&format!(
            "  thrpt: {}{unit}/s",
            fmt_scaled(count / median.max(1e-18))
        ));
    }
    println!("{line}");
}

fn fmt_time(seconds: f64) -> String {
    if seconds >= 1.0 {
        format!("{seconds:.3} s")
    } else if seconds >= 1e-3 {
        format!("{:.3} ms", seconds * 1e3)
    } else if seconds >= 1e-6 {
        format!("{:.3} µs", seconds * 1e6)
    } else {
        format!("{:.1} ns", seconds * 1e9)
    }
}

fn fmt_scaled(v: f64) -> String {
    if v >= 1e9 {
        format!("{:.2} G", v / 1e9)
    } else if v >= 1e6 {
        format!("{:.2} M", v / 1e6)
    } else if v >= 1e3 {
        format!("{:.2} k", v / 1e3)
    } else {
        format!("{v:.2} ")
    }
}

/// Group several bench functions under one runner function
/// (criterion-compatible).
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Emit `main` running the given groups (criterion-compatible).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench` passes `--bench`; ignore all CLI arguments.
            $( $group(); )+
        }
    };
}
