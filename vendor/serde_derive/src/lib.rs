//! No-op `Serialize` / `Deserialize` derives for the vendored serde
//! shim. Nothing in this workspace actually serializes values — the
//! derives exist so type definitions annotated for downstream users
//! still compile without registry access — so the macros expand to
//! nothing.

use proc_macro::TokenStream;

/// Expands to nothing; satisfies `#[derive(serde::Serialize)]`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Expands to nothing; satisfies `#[derive(serde::Deserialize)]`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
