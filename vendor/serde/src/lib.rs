//! Vendored [serde](https://docs.rs/serde) shim.
//!
//! The workspace only ever *derives* `Serialize`/`Deserialize` (as a
//! courtesy to downstream users of the real crate); nothing serializes
//! at runtime. This shim therefore provides the two derive macros
//! (expanding to nothing) plus marker traits of the same names so
//! `T: serde::Serialize` bounds would still compile if ever written.

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de> {}
