//! Vendored mini property-testing harness exposing the
//! [proptest](https://docs.rs/proptest) API subset this workspace's
//! test suites use: the `proptest!` macro (with optional
//! `#![proptest_config]`), `prop_assert!`/`prop_assert_eq!`, range and
//! tuple strategies, `any::<T>()`, `prop_map`/`prop_flat_map`, and
//! `proptest::collection::vec`.
//!
//! Differences from the original: inputs are generated from a
//! deterministic per-test RNG (seeded from the test's module path and
//! case number, so failures reproduce exactly), and there is no
//! shrinking — a failing case panics with whatever message the
//! assertion produced.

/// Per-test configuration (the consumed subset).
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 16 }
    }
}

pub mod test_runner {
    //! Deterministic random number generation for property tests.

    /// SplitMix64-based deterministic RNG.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seed from a test identifier and case number (FNV-1a hash),
        /// so every run of every case is reproducible.
        pub fn deterministic(test_id: &str, case: u32) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in test_id.bytes().chain(case.to_le_bytes()) {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            Self { state: h | 1 }
        }

        /// Next raw 64-bit value.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }

        /// Uniform `usize` in `[0, n)`; `n` must be positive.
        pub fn below(&mut self, n: u64) -> u64 {
            self.next_u64() % n
        }
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and combinators.

    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The generated value type.
        type Value;

        /// Generate one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Map generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Generate a value, then generate from the strategy `f` builds
        /// out of it.
        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { inner: self, f }
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
        type Value = T::Value;
        fn generate(&self, rng: &mut TestRng) -> T::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start() as i128, *self.end() as i128);
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi - lo + 1) as u64;
                    (lo + rng.below(span) as i128) as $t
                }
            }
        )*};
    }
    int_range_strategy!(usize, u8, u16, u32, u64, i8, i16, i32, i64);

    macro_rules! float_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    self.start + (self.end - self.start) * rng.unit_f64() as $t
                }
            }
        )*};
    }
    float_range_strategy!(f32, f64);

    macro_rules! tuple_strategy {
        ($(($($n:ident),+))*) => {$(
            #[allow(non_snake_case)]
            impl<$($n: Strategy),+> Strategy for ($($n,)+) {
                type Value = ($($n::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($n,)+) = self;
                    ($($n.generate(rng),)+)
                }
            }
        )*};
    }
    tuple_strategy! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
        (A, B, C, D, E, G)
        (A, B, C, D, E, G, H)
        (A, B, C, D, E, G, H, I)
        (A, B, C, D, E, G, H, I, J)
    }

    /// Types with a canonical "anything" strategy (see [`any`]).
    pub trait Arbitrary: Sized {
        /// Generate an arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! int_arbitrary {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// Strategy generating arbitrary values of `T`.
    pub struct Any<T>(std::marker::PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The `any::<T>()` strategy constructor.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(std::marker::PhantomData)
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Length specification for [`vec()`]: a fixed length or a range.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    /// Strategy producing `Vec`s of values from `element`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `proptest::collection::vec(element, size)`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// The prelude: everything a `proptest!` test file needs.
pub mod prelude {
    pub use crate::strategy::{any, Arbitrary, Strategy};
    pub use crate::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Assert inside a property (panics with the formatted message).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Assert equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Assert inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

/// Define property tests: each `#[test] fn name(arg in strategy, ...)`
/// runs `config.cases` times with deterministically generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ (<$crate::ProptestConfig as ::core::default::Default>::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr)
      $( #[test] fn $name:ident ( $( $arg:ident in $strat:expr ),* $(,)? ) $body:block )*
    ) => {
        $(
            #[test]
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                for case in 0..config.cases {
                    let mut rng = $crate::test_runner::TestRng::deterministic(
                        concat!(module_path!(), "::", stringify!($name)),
                        case,
                    );
                    $( let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng); )*
                    $body
                }
            }
        )*
    };
}
